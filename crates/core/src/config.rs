//! Reproducible market generation from the paper's Table II parameters.

use crate::error::{ModelError, Result};
use crate::market::{Market, MechanismParams};
use crate::org::Organization;
use tradefl_runtime::rng::{Rng, SeedableRng, StdRng};

/// Sampling ranges for a randomly generated market, defaulting to the
/// paper's Table II:
///
/// | parameter | value |
/// |-----------|-------|
/// | `\|N\|`   | 10 |
/// | `D_min`   | 0.01 |
/// | `p_i`     | `[500, 2500]` |
/// | `s_i`     | `[15, 25]·10⁹` bits |
/// | `\|S_i\|` | `[1000, 2000]` |
/// | `κ`       | `10⁻²⁷` |
/// | `F_i^(m)` | 3-5 GHz |
///
/// Competition intensities are drawn from `N(μ, (μ/5)²)` as in §VI
/// (Figs. 10-11), clamped to `[0, 1]`, symmetrized, and rescaled if
/// necessary so that every potential weight `z_i` stays positive
/// (the paper: "ρ_{i,j} is mapped to a small number to ensure z_i > 0").
#[derive(Debug, Clone, PartialEq)]
pub struct MarketConfig {
    /// Number of organizations `|N|`.
    pub orgs: usize,
    /// Profitability range `p_i`.
    pub profitability: (f64, f64),
    /// Dataset-size range `s_i` (bits).
    pub data_bits: (f64, f64),
    /// Sample-count range `|S_i|`.
    pub samples: (usize, usize),
    /// Fastest-frequency range `F_i^(m)` (Hz).
    pub f_max: (f64, f64),
    /// Ladder length `m` (levels spaced evenly up to `F_i^(m)`).
    pub levels: usize,
    /// Per-bit compute cost range `η_i` (cycles/bit).
    pub eta: (f64, f64),
    /// Download/upload time range `T_i^(1)`, `T_i^(3)` (seconds).
    pub comm_time: (f64, f64),
    /// Download/upload power range (watts).
    pub comm_power: (f64, f64),
    /// Mean competition intensity `μ` of `ρ_{i,j} ~ N(μ, (μ/5)²)`.
    pub rho_mean: f64,
    /// Mechanism parameters (γ, λ, κ, ϖ_e, τ, D_min).
    pub params: MechanismParams,
}

impl MarketConfig {
    /// The paper's Table II configuration with the DESIGN.md calibration
    /// for parameters the paper leaves implicit (η, communication, μ).
    pub fn table_ii() -> Self {
        Self {
            orgs: 10,
            profitability: (500.0, 2500.0),
            data_bits: (15e9, 25e9),
            samples: (1000, 2000),
            f_max: (3e9, 5e9),
            levels: 4,
            eta: (80.0, 120.0),
            comm_time: (3.0, 8.0),
            comm_power: (5.0, 15.0),
            rho_mean: 0.03,
            params: MechanismParams::paper_default(),
        }
    }

    /// Returns a copy with a different organization count.
    pub fn with_orgs(mut self, orgs: usize) -> Self {
        self.orgs = orgs;
        self
    }

    /// Returns a copy with a different mean competition intensity `μ`.
    pub fn with_rho_mean(mut self, mu: f64) -> Self {
        self.rho_mean = mu;
        self
    }

    /// Returns a copy with a different ladder length `m`.
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    /// Returns a copy with different mechanism parameters.
    pub fn with_params(mut self, params: MechanismParams) -> Self {
        self.params = params;
        self
    }

    /// Deterministically samples a market from this configuration.
    ///
    /// The same `(config, seed)` pair always produces the same market,
    /// which is what makes every figure harness reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the configuration is degenerate (zero
    /// organizations, empty ladder, inverted ranges) or produces an
    /// invalid market.
    pub fn build(&self, seed: u64) -> Result<Market> {
        self.validate_ranges()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let orgs = self.sample_orgs(&mut rng)?;
        let rho = self.sample_rho(&mut rng, &orgs);
        Market::new(orgs, rho, self.params.clone())
    }

    /// Deterministically samples a market with a **sparse** competition
    /// matrix: each organization draws `⌈density · (|N|−1)⌉` competitor
    /// pairs (deduplicated), so `ρ` stores O(density · N²) entries
    /// instead of N². This is the constructor for ten-thousand-org
    /// markets, where the dense matrix alone would be ~800 MB.
    ///
    /// The RNG stream differs from [`MarketConfig::build`] only in the
    /// ρ-sampling phase; organizations are drawn identically.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on a degenerate configuration, a
    /// `density` outside `(0, 1]`, or an invalid sampled market.
    pub fn build_sparse(&self, seed: u64, density: f64) -> Result<Market> {
        use crate::market::RhoMatrix;
        if !(density > 0.0 && density <= 1.0) {
            return Err(ModelError::OutOfRange {
                name: "density",
                value: density,
                min: f64::MIN_POSITIVE,
                max: 1.0,
            });
        }
        self.validate_ranges()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let orgs = self.sample_orgs(&mut rng)?;
        let triplets = self.sample_rho_sparse(&mut rng, &orgs, density);
        let rho = RhoMatrix::from_triplets(orgs.len(), &triplets)?;
        Market::with_rho(orgs, rho, self.params.clone())
    }

    fn validate_ranges(&self) -> Result<()> {
        if self.orgs == 0 {
            return Err(ModelError::NonPositive { name: "orgs", value: 0.0 });
        }
        if self.levels == 0 {
            return Err(ModelError::EmptyComputeLevels { i: 0 });
        }
        for (name, (lo, hi)) in [
            ("profitability", self.profitability),
            ("data_bits", self.data_bits),
            ("f_max", self.f_max),
            ("eta", self.eta),
            ("comm_time", self.comm_time),
            ("comm_power", self.comm_power),
        ] {
            if !(lo.is_finite() && hi.is_finite()) {
                return Err(ModelError::NotFinite { name });
            }
            if lo > hi {
                return Err(ModelError::OutOfRange { name, value: lo, min: f64::NEG_INFINITY, max: hi });
            }
        }
        if self.samples.0 > self.samples.1 || self.samples.0 == 0 {
            return Err(ModelError::OutOfRange {
                name: "samples",
                value: self.samples.0 as f64,
                min: 1.0,
                max: self.samples.1 as f64,
            });
        }
        Ok(())
    }

    fn sample_orgs(&self, rng: &mut StdRng) -> Result<Vec<Organization>> {
        let mut orgs = Vec::with_capacity(self.orgs);
        for i in 0..self.orgs {
            let f_max = sample(rng, self.f_max);
            // Evenly spaced ladder from 40% of F^(m) up to F^(m).
            let levels: Vec<f64> = (0..self.levels)
                .map(|k| {
                    if self.levels == 1 {
                        f_max
                    } else {
                        f_max * (0.4 + 0.6 * k as f64 / (self.levels - 1) as f64)
                    }
                })
                .collect();
            orgs.push(
                Organization::builder(format!("org-{i}"))
                    .profitability(sample(rng, self.profitability))
                    .data_bits(sample(rng, self.data_bits))
                    .samples(rng.gen_range(self.samples.0..=self.samples.1))
                    .eta(sample(rng, self.eta))
                    .compute_levels(levels)
                    .t_download(sample(rng, self.comm_time))
                    .t_upload(sample(rng, self.comm_time))
                    .power_download(sample(rng, self.comm_power))
                    .power_upload(sample(rng, self.comm_power))
                    .build()?,
            );
        }
        Ok(orgs)
    }

    /// Draws the symmetric competition matrix and rescales it until every
    /// weight `z_i` is strictly positive.
    fn sample_rho(&self, rng: &mut StdRng, orgs: &[Organization]) -> Vec<Vec<f64>> {
        let n = orgs.len();
        let mu = self.rho_mean.max(0.0);
        let sigma = mu / 5.0;
        let mut rho = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let v = normal(rng, mu, sigma).clamp(0.0, 1.0);
                rho[i][j] = v;
                rho[j][i] = v;
            }
        }
        // Rescale to guarantee z_i = p_i - Σ_j ρ_ij p_j > 0 (Theorem 1's
        // "mapped to a small number" step). Keep 5% headroom.
        let mut scale: f64 = 1.0;
        for (i, oi) in orgs.iter().enumerate() {
            let pressure: f64 = rho[i]
                .iter()
                .zip(orgs)
                .map(|(&r, oj)| r * oj.profitability())
                .sum();
            if pressure > 0.0 {
                scale = scale.min(0.95 * oi.profitability() / pressure);
            }
        }
        if scale < 1.0 {
            for row in &mut rho {
                for v in row.iter_mut() {
                    *v *= scale;
                }
            }
        }
        rho
    }

    /// Draws a sparse symmetric competition structure as upper-triangle
    /// triplets and rescales the values so every `z_i` stays positive,
    /// without ever materializing the dense matrix (O(nnz) work and
    /// memory).
    fn sample_rho_sparse(
        &self,
        rng: &mut StdRng,
        orgs: &[Organization],
        density: f64,
    ) -> Vec<(usize, usize, f64)> {
        let n = orgs.len();
        let mu = self.rho_mean.max(0.0);
        let sigma = mu / 5.0;
        if n < 2 {
            return Vec::new();
        }
        let per_row = ((density * (n - 1) as f64).ceil() as usize).clamp(1, n - 1);
        // Ordered set: deterministic iteration, duplicates merged, and
        // each unordered pair drawn at most once.
        let mut pairs = std::collections::BTreeSet::new();
        for i in 0..n {
            for _ in 0..per_row {
                let j = rng.gen_range(0..n - 1);
                let j = if j >= i { j + 1 } else { j };
                pairs.insert((i.min(j), i.max(j)));
            }
        }
        let mut triplets: Vec<(usize, usize, f64)> = pairs
            .into_iter()
            .map(|(i, j)| (i, j, normal(rng, mu, sigma).clamp(0.0, 1.0)))
            .collect();
        // Same z_i > 0 rescale as the dense path, computed from the
        // stored entries only (each triplet pressures both endpoints).
        let mut pressure = vec![0.0f64; n];
        for &(i, j, v) in &triplets {
            pressure[i] += v * orgs[j].profitability();
            pressure[j] += v * orgs[i].profitability();
        }
        let mut scale: f64 = 1.0;
        for (i, oi) in orgs.iter().enumerate() {
            if pressure[i] > 0.0 {
                scale = scale.min(0.95 * oi.profitability() / pressure[i]);
            }
        }
        if scale < 1.0 {
            for t in &mut triplets {
                t.2 *= scale;
            }
        }
        triplets
    }
}

impl Default for MarketConfig {
    fn default() -> Self {
        Self::table_ii()
    }
}

fn sample(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Box-Muller draw from `N(mu, sigma^2)`; avoids pulling in rand_distr.
fn normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    // lint:allow(no-float-eq): exact-zero sigma is the degenerate "no noise" case
    if sigma == 0.0 {
        return mu;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mu + sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_builds_ten_orgs() {
        let m = MarketConfig::table_ii().build(1).unwrap();
        assert_eq!(m.len(), 10);
        for org in m.orgs() {
            assert!(org.profitability() >= 500.0 && org.profitability() <= 2500.0);
            assert!(org.data_bits() >= 15e9 && org.data_bits() <= 25e9);
            assert!((1000..=2000).contains(&org.samples()));
            assert!(org.max_frequency() >= 3e9 && org.max_frequency() <= 5e9);
            assert_eq!(org.compute_level_count(), 4);
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = MarketConfig::table_ii().build(99).unwrap();
        let b = MarketConfig::table_ii().build(99).unwrap();
        let c = MarketConfig::table_ii().build(100).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn weights_always_positive_even_for_large_mu() {
        for seed in 0..20 {
            let m = MarketConfig::table_ii().with_rho_mean(0.5).build(seed).unwrap();
            for i in 0..m.len() {
                assert!(m.weight(i) > 0.0, "seed {seed} org {i}");
            }
        }
    }

    #[test]
    fn rho_is_symmetric_with_zero_diagonal() {
        let m = MarketConfig::table_ii().build(3).unwrap();
        for i in 0..m.len() {
            assert_eq!(m.rho(i, i), 0.0);
            for j in 0..m.len() {
                assert_eq!(m.rho(i, j), m.rho(j, i));
            }
        }
    }

    #[test]
    fn zero_mu_means_no_competition() {
        let m = MarketConfig::table_ii().with_rho_mean(0.0).build(5).unwrap();
        for i in 0..m.len() {
            assert_eq!(m.competition_pressure(i), 0.0);
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(MarketConfig::table_ii().with_orgs(0).build(1).is_err());
        assert!(MarketConfig::table_ii().with_levels(0).build(1).is_err());
        let mut c = MarketConfig::table_ii();
        c.profitability = (2500.0, 500.0);
        assert!(c.build(1).is_err());
        let mut c = MarketConfig::table_ii();
        c.samples = (0, 10);
        assert!(c.build(1).is_err());
    }

    #[test]
    fn build_sparse_is_deterministic_and_sparse() {
        let cfg = MarketConfig::table_ii().with_orgs(200);
        let a = cfg.build_sparse(7, 0.05).unwrap();
        let b = cfg.build_sparse(7, 0.05).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        // ~5% density: far fewer stored entries than the dense N².
        assert!(a.rho_nnz() < 200 * 200 / 4, "nnz = {}", a.rho_nnz());
        assert!(a.rho_nnz() > 0);
        for i in 0..a.len() {
            assert!(a.weight(i) > 0.0, "org {i}");
        }
        // Orgs are drawn from the same stream as the dense builder.
        let dense = cfg.build(7).unwrap();
        assert_eq!(dense.orgs(), a.orgs());
    }

    #[test]
    fn build_sparse_rejects_bad_density() {
        let cfg = MarketConfig::table_ii();
        assert!(cfg.build_sparse(1, 0.0).is_err());
        assert!(cfg.build_sparse(1, 1.5).is_err());
        assert!(cfg.build_sparse(1, f64::NAN).is_err());
        assert!(cfg.build_sparse(1, 1.0).is_ok());
    }

    #[test]
    fn single_level_ladder_uses_f_max() {
        let m = MarketConfig::table_ii().with_levels(1).build(8).unwrap();
        for org in m.orgs() {
            assert_eq!(org.compute_level_count(), 1);
            assert_eq!(org.frequency(0), org.max_frequency());
        }
    }
}
