//! Error types for model construction and validation.

use std::fmt;

/// Errors raised while building or validating a [`crate::market::Market`],
/// an [`crate::org::Organization`] or a strategy profile.
///
/// Every public constructor in this crate validates its arguments
/// (C-VALIDATE) and reports violations through this type.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Human-readable parameter name, e.g. `"s_i"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter that must lie in an inclusive interval did not.
    OutOfRange {
        /// Human-readable parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// Lower inclusive bound.
        min: f64,
        /// Upper inclusive bound.
        max: f64,
    },
    /// A parameter was NaN or infinite.
    NotFinite {
        /// Human-readable parameter name.
        name: &'static str,
    },
    /// The competition matrix has the wrong shape for the organization set.
    DimensionMismatch {
        /// Expected dimension (number of organizations).
        expected: usize,
        /// Dimension actually provided.
        found: usize,
    },
    /// The competition matrix is not symmetric; budget balance (Def. 5)
    /// requires `rho[i][j] == rho[j][i]`.
    AsymmetricCompetition {
        /// Row index of the offending entry.
        i: usize,
        /// Column index of the offending entry.
        j: usize,
    },
    /// The competition matrix has a non-zero diagonal entry; an
    /// organization does not compete with itself.
    SelfCompetition {
        /// Index of the offending organization.
        i: usize,
    },
    /// The potential-game weight `z_i = p_i - sum_j rho_ij p_j` is not
    /// strictly positive (required by Theorem 1 of the paper).
    NonPositiveWeight {
        /// Index of the offending organization.
        i: usize,
        /// The computed weight value.
        z: f64,
    },
    /// An organization has an empty compute-level ladder.
    EmptyComputeLevels {
        /// Index of the offending organization.
        i: usize,
    },
    /// Compute levels must be sorted strictly ascending.
    UnsortedComputeLevels {
        /// Index of the offending organization.
        i: usize,
    },
    /// A strategy references a compute level index outside the ladder.
    InvalidComputeLevel {
        /// Organization index.
        org: usize,
        /// Offending level index.
        level: usize,
        /// Ladder length `m`.
        m: usize,
    },
    /// A strategy profile has a different length than the market.
    ProfileLength {
        /// Expected number of strategies.
        expected: usize,
        /// Number of strategies found.
        found: usize,
    },
    /// No feasible data fraction exists for some organization: even the
    /// minimum contribution `D_min` violates the deadline at the fastest
    /// compute level.
    Infeasible {
        /// Index of the offending organization.
        org: usize,
    },
    /// A sparse competition matrix was given the same entry twice.
    DuplicateCompetitionEntry {
        /// Row index of the duplicated entry.
        i: usize,
        /// Column index of the duplicated entry.
        j: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositive { name, value } => {
                write!(f, "parameter `{name}` must be positive, got {value}")
            }
            ModelError::OutOfRange { name, value, min, max } => {
                write!(f, "parameter `{name}` must lie in [{min}, {max}], got {value}")
            }
            ModelError::NotFinite { name } => {
                write!(f, "parameter `{name}` must be finite")
            }
            ModelError::DimensionMismatch { expected, found } => {
                write!(f, "competition matrix dimension {found} does not match {expected} organizations")
            }
            ModelError::AsymmetricCompetition { i, j } => {
                write!(f, "competition matrix must be symmetric, rho[{i}][{j}] != rho[{j}][{i}]")
            }
            ModelError::SelfCompetition { i } => {
                write!(f, "competition matrix diagonal entry rho[{i}][{i}] must be zero")
            }
            ModelError::NonPositiveWeight { i, z } => {
                write!(f, "potential weight z_{i} = {z} is not positive; reduce competition intensities")
            }
            ModelError::EmptyComputeLevels { i } => {
                write!(f, "organization {i} has an empty compute-level ladder")
            }
            ModelError::UnsortedComputeLevels { i } => {
                write!(f, "organization {i} compute levels must be strictly ascending")
            }
            ModelError::InvalidComputeLevel { org, level, m } => {
                write!(f, "organization {org} compute level {level} out of range (m = {m})")
            }
            ModelError::ProfileLength { expected, found } => {
                write!(f, "strategy profile has {found} entries, expected {expected}")
            }
            ModelError::Infeasible { org } => {
                write!(f, "organization {org} cannot meet the deadline even at D_min and the fastest compute level")
            }
            ModelError::DuplicateCompetitionEntry { i, j } => {
                write!(f, "sparse competition matrix lists entry ({i}, {j}) more than once")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

pub(crate) fn ensure_finite(name: &'static str, value: f64) -> Result<f64> {
    if value.is_finite() {
        Ok(value)
    } else {
        Err(ModelError::NotFinite { name })
    }
}

pub(crate) fn ensure_positive(name: &'static str, value: f64) -> Result<f64> {
    ensure_finite(name, value)?;
    if value > 0.0 {
        Ok(value)
    } else {
        Err(ModelError::NonPositive { name, value })
    }
}

pub(crate) fn ensure_in_range(
    name: &'static str,
    value: f64,
    min: f64,
    max: f64,
) -> Result<f64> {
    ensure_finite(name, value)?;
    if value >= min && value <= max {
        Ok(value)
    } else {
        Err(ModelError::OutOfRange { name, value, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = ModelError::NonPositive { name: "s_i", value: -1.0 };
        let msg = e.to_string();
        assert!(msg.contains("s_i"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn ensure_positive_rejects_zero_and_nan() {
        assert!(ensure_positive("x", 0.0).is_err());
        assert!(ensure_positive("x", f64::NAN).is_err());
        assert!(ensure_positive("x", 1.0).is_ok());
    }

    #[test]
    fn ensure_in_range_bounds_inclusive() {
        assert!(ensure_in_range("x", 0.0, 0.0, 1.0).is_ok());
        assert!(ensure_in_range("x", 1.0, 0.0, 1.0).is_ok());
        assert!(ensure_in_range("x", 1.0001, 0.0, 1.0).is_err());
        assert!(ensure_in_range("x", f64::INFINITY, 0.0, 1.0).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
