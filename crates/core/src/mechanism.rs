//! Mechanism-property audits: the Definitions 3-5 / Theorem 2 checks.
//!
//! TradeFL claims individual rationality (IR), budget balance (BB) and
//! computational efficiency (CE). The first two are *runtime-checkable*
//! facts about a concrete equilibrium profile; [`MechanismAudit`]
//! evaluates them so tests, examples and the settlement contract can
//! assert them. CE is a complexity statement; the bench suite measures
//! it empirically (`benches/complexity.rs`).

use crate::accuracy::AccuracyModel;
use crate::game::CoopetitionGame;
use crate::strategy::StrategyProfile;

/// Result of auditing a strategy profile against Definitions 3-5.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismAudit {
    /// Per-organization payoffs `C_i` at the audited profile.
    pub payoffs: Vec<f64>,
    /// Per-organization received redistribution `R_i`.
    pub redistributions: Vec<f64>,
    /// `Σ_i R_i`; budget balance (Def. 5) requires this to be zero.
    pub redistribution_sum: f64,
    /// The smallest payoff; individual rationality (Def. 3) requires it
    /// to be non-negative.
    pub min_payoff: f64,
    /// Social welfare `Σ_i C_i`.
    pub social_welfare: f64,
}

impl MechanismAudit {
    /// Audits `profile` under `game`.
    pub fn evaluate<A: AccuracyModel>(
        game: &CoopetitionGame<A>,
        profile: &StrategyProfile,
    ) -> Self {
        let n = game.market().len();
        let payoffs: Vec<f64> = (0..n).map(|i| game.payoff(profile, i)).collect();
        let redistributions: Vec<f64> =
            (0..n).map(|i| game.redistribution(profile, i)).collect();
        let redistribution_sum = redistributions.iter().sum();
        let min_payoff = payoffs.iter().copied().fold(f64::INFINITY, f64::min);
        let social_welfare = payoffs.iter().sum();
        Self { payoffs, redistributions, redistribution_sum, min_payoff, social_welfare }
    }

    /// Individual rationality (Definition 3): every payoff non-negative
    /// within `tol`.
    pub fn individually_rational(&self, tol: f64) -> bool {
        self.min_payoff >= -tol
    }

    /// Budget balance (Definition 5): `Σ_i R_i = 0` within `tol`.
    ///
    /// The natural tolerance scales with the gross redistribution volume;
    /// pass e.g. `1e-9 * gross` where
    /// `gross = Σ_i |R_i|`, or use [`MechanismAudit::budget_balanced_rel`].
    pub fn budget_balanced(&self, tol: f64) -> bool {
        self.redistribution_sum.abs() <= tol
    }

    /// Budget balance with a relative tolerance against the gross
    /// redistribution volume (robust to float cancellation).
    pub fn budget_balanced_rel(&self, rel_tol: f64) -> bool {
        let gross: f64 = self.redistributions.iter().map(|r| r.abs()).sum();
        self.redistribution_sum.abs() <= rel_tol * gross.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::SqrtAccuracy;
    use crate::config::MarketConfig;
    use crate::strategy::Strategy;

    #[test]
    fn audit_reports_consistent_aggregates() {
        let market = MarketConfig::table_ii().with_orgs(5).build(11).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let mut profile = StrategyProfile::minimal(game.market());
        profile.set(0, Strategy::new(0.4, 1));
        let audit = MechanismAudit::evaluate(&game, &profile);
        assert_eq!(audit.payoffs.len(), 5);
        let welfare: f64 = audit.payoffs.iter().sum();
        assert!((audit.social_welfare - welfare).abs() < 1e-9);
        assert!(audit.min_payoff <= audit.payoffs[0]);
    }

    #[test]
    fn budget_balance_holds_for_symmetric_rho() {
        let market = MarketConfig::table_ii().build(13).unwrap();
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let mut profile = StrategyProfile::minimal(game.market());
        profile.set(2, Strategy::new(0.6, 3));
        profile.set(7, Strategy::new(0.3, 2));
        let audit = MechanismAudit::evaluate(&game, &profile);
        assert!(audit.budget_balanced_rel(1e-9));
    }
}
