//! Data-accuracy functions `P(d_i, d_-i)` (paper §III-C, Eqs. 4-5).
//!
//! TradeFL deliberately does **not** assume a specific functional form for
//! the relationship between contributed data and global-model accuracy.
//! It only requires the first/second-derivative properties of Eq. (5):
//!
//! ```text
//!   dP/dd_i >= 0         (more data never hurts)
//!   d^2P/dd_i^2 <= 0     (diminishing returns)
//! ```
//!
//! With a strongly convex global loss, `P(d_i, d_-i) = P(Ω)` depends only
//! on the *total* contributed data `Ω = Σ_i d_i s_i` (paper §III-C1), so
//! implementations of [`AccuracyModel`] map a total data volume to an
//! accuracy gain. Four models are provided:
//!
//! * [`SqrtAccuracy`] — the general accuracy-loss bound of the paper's
//!   footnote 7 (`A(Ω) = 1/sqrt(Ω̃ G) + 1/G`), used in all of the paper's
//!   simulations;
//! * [`LogAccuracy`] — a logarithmic gain curve;
//! * [`PowerLawAccuracy`] — a saturating power law;
//! * [`EmpiricalAccuracy`] — a monotone piecewise-linear interpolation of
//!   measured `(Ω, accuracy)` samples, e.g. obtained from the federated
//!   training substrate (`tradefl-fl-sim`) as in the paper's Fig. 2.

use crate::error::{ensure_positive, ModelError, Result};

/// The data-accuracy function `P(Ω) = A(0) − A(Ω)` (Eq. 4).
///
/// Implementors must guarantee Eq. (5): [`AccuracyModel::gain`] is
/// non-decreasing and concave on `Ω > 0`. [`AccuracyModel::gain_deriv`]
/// must return the exact derivative of `gain` (solvers rely on it for
/// KKT conditions and Benders cuts).
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::{AccuracyModel, SqrtAccuracy};
///
/// let p = SqrtAccuracy::paper_default();
/// let low = p.gain(10e9);
/// let high = p.gain(100e9);
/// assert!(high > low, "more data yields a larger gain");
/// ```
pub trait AccuracyModel: Send + Sync {
    /// Accuracy gain `P(Ω)` of the global model when the total contributed
    /// data volume is `omega` (bits). Non-negative, non-decreasing, concave.
    fn gain(&self, omega: f64) -> f64;

    /// First derivative `dP/dΩ` at `omega`. Non-negative and non-increasing.
    fn gain_deriv(&self, omega: f64) -> f64;

    /// Second derivative `d²P/dΩ²` at `omega`. Non-positive (Eq. 5).
    ///
    /// Used by the interior-point primal solver's Newton step. The
    /// default implementation differentiates [`AccuracyModel::gain_deriv`]
    /// numerically; implementors with a closed form should override it.
    fn gain_curvature(&self, omega: f64) -> f64 {
        let h = (omega.abs() * 1e-5).max(1.0);
        let lo = (omega - h).max(0.0);
        (self.gain_deriv(omega + h) - self.gain_deriv(lo)) / (omega + h - lo)
    }

    /// A human-readable model name used in reports and traces.
    fn name(&self) -> &str {
        "accuracy-model"
    }
}

impl<T: AccuracyModel + ?Sized> AccuracyModel for &T {
    fn gain(&self, omega: f64) -> f64 {
        (**self).gain(omega)
    }
    fn gain_deriv(&self, omega: f64) -> f64 {
        (**self).gain_deriv(omega)
    }
    fn gain_curvature(&self, omega: f64) -> f64 {
        (**self).gain_curvature(omega)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl AccuracyModel for Box<dyn AccuracyModel> {
    fn gain(&self, omega: f64) -> f64 {
        (**self).gain(omega)
    }
    fn gain_deriv(&self, omega: f64) -> f64 {
        (**self).gain_deriv(omega)
    }
    fn gain_curvature(&self, omega: f64) -> f64 {
        (**self).gain_curvature(omega)
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The accuracy-loss bound used in the paper's simulations (footnote 7):
///
/// ```text
///   A(Ω) = 1 / sqrt((Ω / scale) · G) + 1 / G,      P(Ω) = A(0) − A(Ω)
/// ```
///
/// where `G` is the number of training epochs, `scale` normalizes the raw
/// data volume (bits) into units comparable to `G` (the paper works with
/// dimensionless sample counts; we expose the normalization explicitly so
/// that Table II magnitudes, `s_i ∈ [15, 25]·10^9` bits, produce the same
/// curve shape), and `A(0)` is the loss of the untrained model — a finite
/// calibration constant (the `A(0)` of Eq. 4), *not* the singular `Ω → 0`
/// limit of the bound.
///
/// The gain `P(Ω) = A(0) − A(Ω)` is **not** clamped at zero: for very
/// small `Ω` it goes negative ("worse than the untrained baseline"),
/// exactly as Eq. (4) reads. Leaving it unclamped keeps `P` concave and
/// monotone on all of `Ω > 0`, which the solvers' convexity analysis
/// (Lemma 1) requires; [`SqrtAccuracy::positive_gain_threshold`] reports
/// where the gain turns positive so callers can calibrate `A(0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SqrtAccuracy {
    epochs: f64,
    scale: f64,
    a0: f64,
}

impl SqrtAccuracy {
    /// Creates the model with `G = epochs`, data normalization `scale`
    /// (bits mapping to one dimensionless data unit) and untrained loss
    /// `a0 = A(0)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if any parameter is non-positive or not
    /// finite.
    pub fn new(epochs: f64, scale: f64, a0: f64) -> Result<Self> {
        ensure_positive("epochs", epochs)?;
        ensure_positive("scale", scale)?;
        ensure_positive("a0", a0)?;
        Ok(Self { epochs, scale, a0 })
    }

    /// The calibration used throughout the reproduction of the paper's
    /// simulation section: `G = 5` effective epochs, a `2.08·10^8`-bit
    /// normalization unit and an untrained-model loss `A(0) = 0.80`.
    ///
    /// These values are derived in DESIGN.md §3 from the paper's
    /// operating point: they place the private first-order condition of
    /// the Table II market at an interior contribution level when
    /// `γ* = 5.12·10⁻⁹`, make social welfare peak near `γ*` (Fig. 10's
    /// non-monotonicity), and put peak welfare in the paper's ≈ 8.6k
    /// range.
    pub fn paper_default() -> Self {
        Self { epochs: 5.0, scale: 2.08e8, a0: 0.80 }
    }

    /// Number of training epochs `G`.
    pub fn epochs(&self) -> f64 {
        self.epochs
    }

    /// Data normalization constant (bits per dimensionless unit).
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Untrained-model accuracy loss `A(0)`.
    pub fn a0(&self) -> f64 {
        self.a0
    }

    /// Accuracy *loss* `A(Ω)` of the bound itself.
    pub fn loss(&self, omega: f64) -> f64 {
        let x = (omega / self.scale).max(f64::MIN_POSITIVE);
        1.0 / (x * self.epochs).sqrt() + 1.0 / self.epochs
    }

    /// The smallest `Ω` for which the gain is strictly positive.
    pub fn positive_gain_threshold(&self) -> f64 {
        // a0 = 1/sqrt(x g) + 1/g  =>  x = 1 / (g (a0 - 1/g)^2)
        let g = self.epochs;
        let denom = self.a0 - 1.0 / g;
        if denom <= 0.0 {
            return f64::INFINITY;
        }
        self.scale / (g * denom * denom)
    }
}

impl AccuracyModel for SqrtAccuracy {
    fn gain(&self, omega: f64) -> f64 {
        self.a0 - self.loss(omega)
    }

    fn gain_deriv(&self, omega: f64) -> f64 {
        let x = (omega / self.scale).max(f64::MIN_POSITIVE);
        // d/dΩ [ -(x g)^{-1/2} ] = g/(2 (x g)^{3/2} scale)
        let g = self.epochs;
        0.5 * g / ((x * g).powf(1.5) * self.scale)
    }

    fn gain_curvature(&self, omega: f64) -> f64 {
        let x = (omega / self.scale).max(f64::MIN_POSITIVE);
        let g = self.epochs;
        // d²/dΩ² [ -(x g)^{-1/2} ] = -3 g² / (4 (x g)^{5/2} scale²)
        -0.75 * g * g / ((x * g).powf(2.5) * self.scale * self.scale)
    }

    fn name(&self) -> &str {
        "sqrt-bound"
    }
}

/// A logarithmic data-accuracy curve `P(Ω) = c · ln(1 + Ω / scale)`.
///
/// Satisfies Eq. (5) everywhere; useful to demonstrate that TradeFL does
/// not depend on the specific sqrt-bound form (§III-C, contribution 1).
#[derive(Debug, Clone, PartialEq)]
pub struct LogAccuracy {
    coefficient: f64,
    scale: f64,
}

impl LogAccuracy {
    /// Creates the model with gain coefficient `c` and normalization
    /// `scale` in bits.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if either parameter is non-positive.
    pub fn new(coefficient: f64, scale: f64) -> Result<Self> {
        ensure_positive("coefficient", coefficient)?;
        ensure_positive("scale", scale)?;
        Ok(Self { coefficient, scale })
    }
}

impl AccuracyModel for LogAccuracy {
    fn gain(&self, omega: f64) -> f64 {
        self.coefficient * (1.0 + omega.max(0.0) / self.scale).ln()
    }

    fn gain_deriv(&self, omega: f64) -> f64 {
        self.coefficient / (self.scale + omega.max(0.0))
    }

    fn gain_curvature(&self, omega: f64) -> f64 {
        let denom = self.scale + omega.max(0.0);
        -self.coefficient / (denom * denom)
    }

    fn name(&self) -> &str {
        "log"
    }
}

/// A saturating power-law curve `P(Ω) = cap · (1 − (1 + Ω/scale)^(−alpha))`.
///
/// For `alpha ∈ (0, 1]` this is increasing and concave, hence satisfies
/// Eq. (5). `cap` is the asymptotic accuracy gain.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerLawAccuracy {
    cap: f64,
    scale: f64,
    alpha: f64,
}

impl PowerLawAccuracy {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if `cap` or `scale` is non-positive or
    /// `alpha` lies outside `(0, 1]`.
    pub fn new(cap: f64, scale: f64, alpha: f64) -> Result<Self> {
        ensure_positive("cap", cap)?;
        ensure_positive("scale", scale)?;
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(ModelError::OutOfRange { name: "alpha", value: alpha, min: 0.0, max: 1.0 });
        }
        Ok(Self { cap, scale, alpha })
    }
}

impl AccuracyModel for PowerLawAccuracy {
    fn gain(&self, omega: f64) -> f64 {
        let base = 1.0 + omega.max(0.0) / self.scale;
        self.cap * (1.0 - base.powf(-self.alpha))
    }

    fn gain_deriv(&self, omega: f64) -> f64 {
        let base = 1.0 + omega.max(0.0) / self.scale;
        self.cap * self.alpha / self.scale * base.powf(-self.alpha - 1.0)
    }

    fn gain_curvature(&self, omega: f64) -> f64 {
        let base = 1.0 + omega.max(0.0) / self.scale;
        -self.cap * self.alpha * (self.alpha + 1.0) / (self.scale * self.scale)
            * base.powf(-self.alpha - 2.0)
    }

    fn name(&self) -> &str {
        "power-law"
    }
}

/// A monotone concave piecewise-linear interpolation of measured
/// `(Ω, gain)` samples.
///
/// This is how an operator plugs *real* measurements (e.g. the Fig. 2
/// pre-experiments produced by `tradefl-fl-sim`) into the mechanism
/// without committing to a functional form. The constructor enforces
/// Eq. (5) on the samples: gains must be non-decreasing and the chord
/// slopes non-increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalAccuracy {
    /// Sorted sample abscissae (total data volume, bits).
    omegas: Vec<f64>,
    /// Gains at the abscissae.
    gains: Vec<f64>,
}

impl EmpiricalAccuracy {
    /// Builds the interpolation from `(omega, gain)` samples.
    ///
    /// Samples are sorted by `omega` internally.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if fewer than two samples are supplied, if
    /// any coordinate is not finite or negative, if two samples share an
    /// abscissa, or if the samples violate monotonicity/concavity
    /// (Eq. 5) beyond a `1e-9` relative tolerance.
    pub fn from_samples(samples: impl IntoIterator<Item = (f64, f64)>) -> Result<Self> {
        let mut pts: Vec<(f64, f64)> = samples.into_iter().collect();
        if pts.len() < 2 {
            return Err(ModelError::OutOfRange {
                name: "samples.len",
                value: pts.len() as f64,
                min: 2.0,
                max: f64::INFINITY,
            });
        }
        for &(x, y) in &pts {
            if !x.is_finite() || !y.is_finite() {
                return Err(ModelError::NotFinite { name: "sample" });
            }
            if x < 0.0 {
                return Err(ModelError::OutOfRange { name: "omega", value: x, min: 0.0, max: f64::INFINITY });
            }
            if y < 0.0 {
                return Err(ModelError::OutOfRange { name: "gain", value: y, min: 0.0, max: f64::INFINITY });
            }
        }
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        // lint:allow(no-panic-in-lib): pts was rejected as too short above, so last() exists
        let span = pts.last().unwrap().0 - pts[0].0;
        let tol = 1e-9 * span.max(1.0);
        let mut prev_slope = f64::INFINITY;
        for w in pts.windows(2) {
            let dx = w[1].0 - w[0].0;
            if dx <= 0.0 {
                return Err(ModelError::OutOfRange {
                    name: "duplicate omega",
                    value: w[1].0,
                    min: w[0].0,
                    max: f64::INFINITY,
                });
            }
            let slope = (w[1].1 - w[0].1) / dx;
            if slope < -tol {
                return Err(ModelError::OutOfRange {
                    name: "gain monotonicity",
                    value: slope,
                    min: 0.0,
                    max: f64::INFINITY,
                });
            }
            if slope > prev_slope + tol {
                return Err(ModelError::OutOfRange {
                    name: "gain concavity",
                    value: slope,
                    min: 0.0,
                    max: prev_slope,
                });
            }
            prev_slope = slope;
        }
        let (omegas, gains) = pts.into_iter().unzip();
        Ok(Self { omegas, gains })
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.omegas.len()
    }

    /// Whether the interpolation holds no samples (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.omegas.is_empty()
    }

    fn segment(&self, omega: f64) -> usize {
        // Index k such that omega is interpolated on [omegas[k], omegas[k+1]].
        match self.omegas.binary_search_by(|x| x.total_cmp(&omega)) {
            Ok(k) => k.min(self.omegas.len() - 2),
            Err(0) => 0,
            Err(k) if k >= self.omegas.len() => self.omegas.len() - 2,
            Err(k) => k - 1,
        }
    }
}

impl AccuracyModel for EmpiricalAccuracy {
    fn gain(&self, omega: f64) -> f64 {
        let n = self.omegas.len();
        if omega <= self.omegas[0] {
            // Extrapolate left with the first chord slope, clamped at 0.
            let s = (self.gains[1] - self.gains[0]) / (self.omegas[1] - self.omegas[0]);
            return (self.gains[0] + s * (omega - self.omegas[0])).max(0.0);
        }
        if omega >= self.omegas[n - 1] {
            // Saturate to the right: no extrapolated growth beyond data.
            return self.gains[n - 1];
        }
        let k = self.segment(omega);
        let t = (omega - self.omegas[k]) / (self.omegas[k + 1] - self.omegas[k]);
        self.gains[k] + t * (self.gains[k + 1] - self.gains[k])
    }

    fn gain_deriv(&self, omega: f64) -> f64 {
        let n = self.omegas.len();
        if omega >= self.omegas[n - 1] {
            return 0.0;
        }
        let k = if omega <= self.omegas[0] { 0 } else { self.segment(omega) };
        ((self.gains[k + 1] - self.gains[k]) / (self.omegas[k + 1] - self.omegas[k])).max(0.0)
    }

    fn gain_curvature(&self, _omega: f64) -> f64 {
        // Piecewise linear: zero curvature almost everywhere.
        0.0
    }

    fn name(&self) -> &str {
        "empirical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eq5<M: AccuracyModel>(m: &M, lo: f64, hi: f64) {
        // Verify the Eq. (5) derivative properties on a grid.
        let steps = 200;
        let mut prev_gain = f64::NEG_INFINITY;
        let mut prev_deriv = f64::INFINITY;
        for k in 0..=steps {
            let omega = lo + (hi - lo) * k as f64 / steps as f64;
            let g = m.gain(omega);
            let d = m.gain_deriv(omega);
            assert!(g >= prev_gain - 1e-9, "gain must be non-decreasing at {omega}");
            assert!(d >= -1e-15, "derivative must be non-negative at {omega}");
            assert!(d <= prev_deriv + 1e-12, "derivative must be non-increasing at {omega}");
            prev_gain = g;
            prev_deriv = d;
        }
    }

    #[test]
    fn sqrt_bound_satisfies_eq5() {
        let m = SqrtAccuracy::paper_default();
        check_eq5(&m, m.positive_gain_threshold() * 1.01, 400e9);
    }

    #[test]
    fn log_satisfies_eq5() {
        check_eq5(&LogAccuracy::new(1.0, 50e9).unwrap(), 0.0, 400e9);
    }

    #[test]
    fn power_law_satisfies_eq5() {
        check_eq5(&PowerLawAccuracy::new(1.0, 50e9, 0.5).unwrap(), 0.0, 400e9);
    }

    #[test]
    fn sqrt_derivative_matches_finite_difference() {
        let m = SqrtAccuracy::paper_default();
        for &omega in &[5e9, 20e9, 100e9, 300e9] {
            let h = omega * 1e-6;
            let fd = (m.gain(omega + h) - m.gain(omega - h)) / (2.0 * h);
            let an = m.gain_deriv(omega);
            assert!(
                (fd - an).abs() <= 1e-6 * an.abs().max(1e-18),
                "finite diff {fd} vs analytic {an} at {omega}"
            );
        }
    }

    #[test]
    fn curvature_matches_finite_difference_of_derivative() {
        let sqrt = SqrtAccuracy::paper_default();
        let log = LogAccuracy::new(2.0, 30e9).unwrap();
        let pl = PowerLawAccuracy::new(1.5, 40e9, 0.7).unwrap();
        for m in [&sqrt as &dyn AccuracyModel, &log, &pl] {
            for &omega in &[10e9, 50e9, 200e9] {
                let h = omega * 1e-5;
                let fd = (m.gain_deriv(omega + h) - m.gain_deriv(omega - h)) / (2.0 * h);
                let an = m.gain_curvature(omega);
                assert!(an <= 0.0, "{}: curvature must be non-positive", m.name());
                let rel = (fd - an).abs() / an.abs().max(1e-30);
                assert!(rel < 1e-3, "{}: fd={fd} analytic={an}", m.name());
            }
        }
    }

    #[test]
    fn default_curvature_implementation_is_sane() {
        // A model relying on the numeric default.
        struct Linearish;
        impl AccuracyModel for Linearish {
            fn gain(&self, omega: f64) -> f64 {
                omega.sqrt()
            }
            fn gain_deriv(&self, omega: f64) -> f64 {
                0.5 / omega.max(1e-12).sqrt()
            }
        }
        let m = Linearish;
        let omega: f64 = 1e6;
        let exact = -0.25 / omega.powf(1.5);
        let got = m.gain_curvature(omega);
        assert!((got - exact).abs() / exact.abs() < 1e-2, "got {got} exact {exact}");
    }

    #[test]
    fn log_derivative_matches_finite_difference() {
        let m = LogAccuracy::new(2.0, 30e9).unwrap();
        let omega = 60e9;
        let h = 1e3;
        let fd = (m.gain(omega + h) - m.gain(omega - h)) / (2.0 * h);
        assert!((fd - m.gain_deriv(omega)).abs() < 1e-12);
    }

    #[test]
    fn sqrt_positive_gain_threshold_is_consistent() {
        let m = SqrtAccuracy::paper_default();
        let t = m.positive_gain_threshold();
        assert!(m.gain(t * 0.99) < 0.0);
        assert!(m.gain(t * 1.01) > 0.0);
        assert!(m.gain(t).abs() < 1e-9);
    }

    #[test]
    fn sqrt_rejects_bad_params() {
        assert!(SqrtAccuracy::new(0.0, 1.0, 1.0).is_err());
        assert!(SqrtAccuracy::new(5.0, -1.0, 1.0).is_err());
        assert!(SqrtAccuracy::new(5.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn empirical_interpolates_and_saturates() {
        let m = EmpiricalAccuracy::from_samples([
            (0.0, 0.0),
            (10.0, 5.0),
            (20.0, 8.0),
            (40.0, 10.0),
        ])
        .unwrap();
        assert_eq!(m.len(), 4);
        assert!(!m.is_empty());
        assert!((m.gain(15.0) - 6.5).abs() < 1e-12);
        assert_eq!(m.gain(100.0), 10.0);
        assert_eq!(m.gain_deriv(100.0), 0.0);
        assert!((m.gain_deriv(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_rejects_nonconcave() {
        // Slopes increase: 0.1 then 1.0 — convex, must be rejected.
        let r = EmpiricalAccuracy::from_samples([(0.0, 0.0), (10.0, 1.0), (20.0, 11.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn empirical_rejects_decreasing() {
        let r = EmpiricalAccuracy::from_samples([(0.0, 5.0), (10.0, 4.0)]);
        assert!(r.is_err());
    }

    #[test]
    fn empirical_rejects_duplicates_and_too_few() {
        assert!(EmpiricalAccuracy::from_samples([(1.0, 1.0)]).is_err());
        assert!(EmpiricalAccuracy::from_samples([(1.0, 1.0), (1.0, 2.0)]).is_err());
    }

    #[test]
    fn empirical_satisfies_eq5_on_grid() {
        let m = EmpiricalAccuracy::from_samples([
            (0.0, 0.0),
            (1e9, 1.0),
            (2e9, 1.8),
            (4e9, 2.9),
            (8e9, 4.0),
        ])
        .unwrap();
        check_eq5(&m, 0.0, 10e9);
    }

    #[test]
    fn trait_object_usable() {
        let boxed: Box<dyn AccuracyModel> = Box::new(SqrtAccuracy::paper_default());
        assert!(boxed.gain(100e9) > 0.0);
        assert_eq!(boxed.name(), "sqrt-bound");
    }
}
