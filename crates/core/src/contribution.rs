//! Cooperative-game contribution indices: Shapley values of the
//! accuracy coalition game.
//!
//! The paper's related work (\[5\], \[6\]) measures *how much each client's
//! data is actually worth* to the trained model. This module computes
//! the exact Shapley value of the coalition game
//! `v(S) = P(Σ_{i∈S} θ_i d_i s_i)` for cross-silo scale (`|N| ≤ ~20`,
//! exact enumeration over subsets), giving a principled yardstick to
//! compare against the trading rule's volume-based payments: Eq. (9)
//! prices raw contributed volume, the Shapley value prices *marginal
//! accuracy*, and the gap between the two is the mechanism's pricing
//! distortion (measurable per organization).

use crate::accuracy::AccuracyModel;
use crate::game::CoopetitionGame;
use crate::strategy::StrategyProfile;

/// Exact Shapley decomposition of the accuracy gain `P(Ω)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShapleyReport {
    /// Shapley value per organization (sums to `v(N) − v(∅)`).
    pub values: Vec<f64>,
    /// The grand-coalition value `v(N) = P(Ω)`.
    pub grand_value: f64,
    /// The empty-coalition value `v(∅) = P(0)`.
    pub empty_value: f64,
}

impl ShapleyReport {
    /// Each organization's share of the total accuracy gain, normalized
    /// to sum to 1 (all zeros if the total gain is ~0).
    pub fn shares(&self) -> Vec<f64> {
        let total: f64 = self.values.iter().sum();
        if total.abs() < 1e-15 {
            return vec![0.0; self.values.len()];
        }
        self.values.iter().map(|v| v / total).collect()
    }
}

/// Computes the exact Shapley value of each organization's contribution
/// to the accuracy gain at `profile`.
///
/// Runs in `O(2^N · N)`; intended for cross-silo scale.
///
/// # Examples
///
/// ```
/// use tradefl_core::accuracy::SqrtAccuracy;
/// use tradefl_core::config::MarketConfig;
/// use tradefl_core::contribution::shapley_accuracy;
/// use tradefl_core::game::CoopetitionGame;
/// use tradefl_core::strategy::StrategyProfile;
///
/// let market = MarketConfig::table_ii().with_orgs(4).build(9)?;
/// let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
/// let profile = StrategyProfile::minimal(game.market());
/// let report = shapley_accuracy(&game, &profile);
/// let total: f64 = report.values.iter().sum();
/// assert!((total - (report.grand_value - report.empty_value)).abs() < 1e-9);
/// # Ok::<(), tradefl_core::error::ModelError>(())
/// ```
///
/// # Panics
///
/// Panics if `|N| > 24` (the enumeration would be prohibitive) or the
/// profile length mismatches the market.
pub fn shapley_accuracy<A: AccuracyModel>(
    game: &CoopetitionGame<A>,
    profile: &StrategyProfile,
) -> ShapleyReport {
    let market = game.market();
    let n = market.len();
    assert!(n <= 24, "exact Shapley enumeration is limited to 24 organizations");
    assert_eq!(profile.len(), n, "profile length mismatch");

    // Effective contributed volume per org.
    let volumes: Vec<f64> = (0..n)
        .map(|i| profile[i].d * market.org(i).effective_bits())
        .collect();

    // Precompute v(S) for all subsets: P(sum of volumes in S).
    let subsets = 1usize << n;
    let mut value = vec![0.0f64; subsets];
    // Incremental sums: v[S] computed from v[S without lowest bit].
    let mut volume_of = vec![0.0f64; subsets];
    for s in 1..subsets {
        let low = s.trailing_zeros() as usize;
        volume_of[s] = volume_of[s & (s - 1)] + volumes[low];
    }
    for s in 0..subsets {
        // Clamp at zero: a coalition's model is never worth less than
        // not training at all. (The unclamped footnote-7 bound diverges
        // to −∞ as Ω → 0, which would let near-empty coalitions dominate
        // the averages with unbounded negative values.)
        value[s] = game.accuracy().gain(volume_of[s]).max(0.0);
    }

    // Shapley: φ_i = Σ_S |S|!(n−|S|−1)!/n! [v(S∪{i}) − v(S)].
    let mut factorial = vec![1.0f64; n + 1];
    for k in 1..=n {
        factorial[k] = factorial[k - 1] * k as f64;
    }
    let mut values = vec![0.0f64; n];
    for s in 0..subsets {
        let size = s.count_ones() as usize;
        if size == n {
            continue; // no player can join the grand coalition
        }
        let weight = factorial[size] * factorial[n - size - 1] / factorial[n];
        for (i, value_i) in values.iter_mut().enumerate() {
            if s & (1 << i) != 0 {
                continue;
            }
            *value_i += weight * (value[s | (1 << i)] - value[s]);
        }
    }
    ShapleyReport { values, grand_value: value[subsets - 1], empty_value: value[0] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::{LogAccuracy, SqrtAccuracy};
    use crate::config::MarketConfig;
    use crate::strategy::Strategy;

    fn game(n: usize, seed: u64) -> CoopetitionGame<SqrtAccuracy> {
        let market = MarketConfig::table_ii().with_orgs(n).build(seed).unwrap();
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    }

    fn profile_for(g: &CoopetitionGame<SqrtAccuracy>, ds: &[f64]) -> StrategyProfile {
        (0..g.market().len())
            .map(|i| {
                Strategy::new(ds[i % ds.len()], g.market().org(i).compute_level_count() - 1)
            })
            .collect()
    }

    #[test]
    fn efficiency_axiom_values_sum_to_total_gain() {
        let g = game(6, 3);
        let p = profile_for(&g, &[0.3, 0.5, 0.7]);
        let report = shapley_accuracy(&g, &p);
        let sum: f64 = report.values.iter().sum();
        let total = report.grand_value - report.empty_value;
        assert!(
            (sum - total).abs() < 1e-9 * total.abs().max(1.0),
            "efficiency: {sum} vs {total}"
        );
        let shares_sum: f64 = report.shares().iter().sum();
        assert!((shares_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn symmetry_axiom_identical_orgs_get_identical_values() {
        // Orgs with equal volumes contribute symmetrically.
        let orgs: Vec<_> = (0..4)
            .map(|i| {
                crate::org::Organization::builder(format!("o{i}"))
                    .data_bits(20e9)
                    .build()
                    .unwrap()
            })
            .collect();
        let rho = vec![vec![0.0; 4]; 4];
        let market =
            crate::market::Market::new(orgs, rho, crate::market::MechanismParams::default())
                .unwrap();
        let g = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let p = profile_for_generic(&g, 0.5);
        let report = shapley_accuracy(&g, &p);
        for w in report.values.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12);
        }
    }

    fn profile_for_generic<A: crate::accuracy::AccuracyModel>(
        g: &CoopetitionGame<A>,
        d: f64,
    ) -> StrategyProfile {
        (0..g.market().len())
            .map(|i| Strategy::new(d, g.market().org(i).compute_level_count() - 1))
            .collect()
    }

    #[test]
    fn null_player_axiom_zero_contribution_zero_value() {
        let g = game(5, 7);
        let mut p = profile_for(&g, &[0.5]);
        // Org 2 contributes (numerically) nothing.
        p.set(2, Strategy::new(1e-12, p[2].level));
        let report = shapley_accuracy(&g, &p);
        assert!(report.values[2].abs() < 1e-6, "null player value {}", report.values[2]);
    }

    #[test]
    fn bigger_contributors_earn_larger_shapley_values() {
        let g = game(4, 11);
        let p = profile_for(&g, &[0.1, 0.9, 0.1, 0.9]);
        let report = shapley_accuracy(&g, &p);
        // Orgs with 0.9 fractions must beat their 0.1 neighbours of
        // comparable dataset size (sizes vary ±25%, fractions vary 9x).
        assert!(report.values[1] > report.values[0]);
        assert!(report.values[3] > report.values[2]);
    }

    #[test]
    fn matches_direct_formula_on_three_players() {
        // Independent verification against the textbook formula with
        // explicitly enumerated orderings.
        let orgs: Vec<_> = [10e9, 20e9, 40e9]
            .iter()
            .map(|&s| {
                crate::org::Organization::builder("o").data_bits(s).build().unwrap()
            })
            .collect();
        let market = crate::market::Market::new(
            orgs,
            vec![vec![0.0; 3]; 3],
            crate::market::MechanismParams::default(),
        )
        .unwrap();
        let acc = LogAccuracy::new(1.0, 10e9).unwrap();
        let g = CoopetitionGame::new(market, acc);
        let p = profile_for_generic(&g, 1.0);
        let report = shapley_accuracy(&g, &p);
        // Direct: average marginal contributions over the 6 orderings.
        let vols = [10e9f64, 20e9, 40e9];
        let v = |set: &[usize]| {
            g.accuracy().gain(set.iter().map(|&i| vols[i]).sum::<f64>())
        };
        let orderings: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut direct = [0.0f64; 3];
        for ord in orderings {
            let mut set = Vec::new();
            for &i in &ord {
                let before = v(&set);
                set.push(i);
                direct[i] += (v(&set) - before) / 6.0;
            }
        }
        for i in 0..3 {
            assert!(
                (report.values[i] - direct[i]).abs() < 1e-9,
                "player {i}: {} vs {}",
                report.values[i],
                direct[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "limited to 24")]
    fn too_many_orgs_panics() {
        // Construct a 25-org market cheaply (validation is the cost).
        let market = MarketConfig::table_ii().with_orgs(25).build(1).unwrap();
        let g = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let p = StrategyProfile::minimal(g.market());
        let _ = shapley_accuracy(&g, &p);
    }
}
