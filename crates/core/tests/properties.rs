//! Property-based tests for the core invariants of the TradeFL model:
//! Theorem 1 (exact weighted potential), Definition 5 (budget balance),
//! Eq. (5) (accuracy-model shape) and constraint handling.
//!
//! Runs on the in-tree `tradefl_runtime::check` harness with pinned
//! seeds; failures print a `TRADEFL_PROP_SEED` replay line.

use tradefl_core::accuracy::{AccuracyModel, LogAccuracy, PowerLawAccuracy, SqrtAccuracy};
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::mechanism::MechanismAudit;
use tradefl_core::strategy::{Strategy, StrategyProfile};
use tradefl_runtime::check::Gen;
use tradefl_runtime::{prop_assert, prop_assume, props};

/// A random feasible profile for the market built from `seed`.
fn feasible_profile(
    game: &CoopetitionGame<SqrtAccuracy>,
    picks: &[(f64, u8)],
) -> StrategyProfile {
    (0..game.market().len())
        .map(|i| {
            let (t, lvl_pick) = picks[i % picks.len()];
            let m = game.market().org(i).compute_level_count();
            let mut level = (lvl_pick as usize) % m;
            // Find a level with a feasible range, preferring the pick.
            while game.market().feasible_range(i, level).is_none() {
                level = (level + 1) % m;
            }
            let (lo, hi) = game.market().feasible_range(i, level).unwrap();
            Strategy::new(lo + t * (hi - lo), level)
        })
        .collect()
}

fn any_game(g: &mut Gen) -> CoopetitionGame<SqrtAccuracy> {
    let seed = g.u64(0..1000);
    let n = g.usize(2..8);
    let mu = g.f64(0.0..0.3);
    let market = MarketConfig::table_ii()
        .with_orgs(n)
        .with_rho_mean(mu)
        .build(seed)
        .expect("table-ii config is always buildable");
    CoopetitionGame::new(market, SqrtAccuracy::paper_default())
}

fn any_picks(g: &mut Gen) -> Vec<(f64, u8)> {
    g.vec(8..=8usize, |g| (g.f64(0.0..=1.0), g.any_u8()))
}

props! {
    #![cases = 64]

    /// Theorem 1: the exact potential satisfies identity (14) for every
    /// unilateral deviation, on random markets and random profiles.
    fn potential_identity_holds(g) {
        let game = any_game(g);
        let picks = any_picks(g);
        let dev_t = g.f64(0.0..=1.0);
        let dev_level = g.any_u8();
        let who = g.any_u8();
        let profile = feasible_profile(&game, &picks);
        let i = (who as usize) % game.market().len();
        let m = game.market().org(i).compute_level_count();
        let mut level = (dev_level as usize) % m;
        while game.market().feasible_range(i, level).is_none() {
            level = (level + 1) % m;
        }
        let (lo, hi) = game.market().feasible_range(i, level).unwrap();
        let dev = Strategy::new(lo + dev_t * (hi - lo), level);
        let gap = game.potential_identity_gap(&profile, i, dev);
        // Scale-aware tolerance: payoffs are O(1e3).
        prop_assert!(gap < 1e-6, "identity gap {gap}");
    }

    /// Definition 5: redistribution is budget balanced for any profile on
    /// a symmetric competition matrix.
    fn budget_balance_holds(g) {
        let game = any_game(g);
        let picks = any_picks(g);
        let profile = feasible_profile(&game, &picks);
        let audit = MechanismAudit::evaluate(&game, &profile);
        prop_assert!(audit.budget_balanced_rel(1e-9),
            "sum R_i = {}", audit.redistribution_sum);
    }

    /// Redistribution is welfare-neutral: social welfare computed with and
    /// without the R_i terms agrees.
    fn redistribution_is_welfare_neutral(g) {
        let game = any_game(g);
        let picks = any_picks(g);
        let profile = feasible_profile(&game, &picks);
        let with_r = game.social_welfare(&profile);
        let without_r: f64 = (0..game.market().len())
            .map(|i| game.payoff_without_redistribution(&profile, i))
            .sum();
        prop_assert!((with_r - without_r).abs() <= 1e-6 * with_r.abs().max(1.0));
    }

    /// Eq. (5) on random sqrt-bound parameterizations: gain is
    /// non-decreasing and concave above the positive-gain threshold.
    fn sqrt_accuracy_shape(g) {
        let epochs = g.f64(1.0..50.0);
        let scale = g.f64(1e9..1e12);
        let a0 = g.f64(0.5..10.0);
        let xs = g.vec(3..=3usize, |g| g.f64(0.01..=1.0));
        let m = SqrtAccuracy::new(epochs, scale, a0).unwrap();
        let floor = m.positive_gain_threshold();
        prop_assume!(floor.is_finite());
        let lo = floor * 1.001;
        let hi = floor * 1000.0;
        let mut pts: Vec<f64> = xs.iter().map(|t| lo + t * (hi - lo)).collect();
        pts.sort_by(f64::total_cmp);
        prop_assert!(m.gain(pts[0]) <= m.gain(pts[1]) + 1e-12);
        prop_assert!(m.gain(pts[1]) <= m.gain(pts[2]) + 1e-12);
        prop_assert!(m.gain_deriv(pts[0]) + 1e-15 >= m.gain_deriv(pts[1]));
        prop_assert!(m.gain_deriv(pts[1]) + 1e-15 >= m.gain_deriv(pts[2]));
    }

    /// Eq. (5) for the alternative models on arbitrary domains.
    fn alternative_models_shape(g) {
        let c = g.f64(0.1..10.0);
        let scale = g.f64(1e8..1e11);
        let alpha = g.f64(0.05..=1.0);
        let a = g.f64(0.0..1e12);
        let b = g.f64(0.0..1e12);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let log = LogAccuracy::new(c, scale).unwrap();
        let pl = PowerLawAccuracy::new(c, scale, alpha).unwrap();
        for m in [&log as &dyn AccuracyModel, &pl as &dyn AccuracyModel] {
            prop_assert!(m.gain(hi) + 1e-12 >= m.gain(lo));
            prop_assert!(m.gain_deriv(lo) + 1e-18 >= m.gain_deriv(hi));
            prop_assert!(m.gain_deriv(lo) >= 0.0);
        }
    }

    /// The minimal profile always validates, and validation accepts
    /// exactly the profiles inside the constraint set.
    fn minimal_profile_is_always_feasible(g) {
        let game = any_game(g);
        let p = StrategyProfile::minimal(game.market());
        prop_assert!(p.validate(game.market()).is_ok());
    }

    /// Shapley efficiency and non-negativity hold on random markets and
    /// profiles (monotone coalition game ⇒ non-negative values).
    fn shapley_axioms_hold(g) {
        use tradefl_core::contribution::shapley_accuracy;
        let game = any_game(g);
        let picks = any_picks(g);
        let profile = feasible_profile(&game, &picks);
        let report = shapley_accuracy(&game, &profile);
        let sum: f64 = report.values.iter().sum();
        let total = report.grand_value - report.empty_value;
        prop_assert!((sum - total).abs() <= 1e-9 * total.abs().max(1.0));
        for (i, v) in report.values.iter().enumerate() {
            prop_assert!(*v >= -1e-12, "negative shapley value {v} at org {i}");
        }
    }

    /// Payoff derivative in d_i is non-increasing (concavity of C_i in
    /// its own data fraction), which DBR's bisection relies on.
    fn payoff_is_concave_in_own_fraction(g) {
        let game = any_game(g);
        let picks = any_picks(g);
        let who = g.any_u8();
        let profile = feasible_profile(&game, &picks);
        let i = (who as usize) % game.market().len();
        let level = profile[i].level;
        let (lo, hi) = game.market().feasible_range(i, level).unwrap();
        let mut prev = f64::INFINITY;
        for k in 0..=8 {
            let d = lo + (hi - lo) * k as f64 / 8.0;
            let der = game.payoff_d_deriv(&profile.with(i, Strategy::new(d, level)), i);
            prop_assert!(der <= prev + 1e-9 * prev.abs().max(1.0));
            prev = der;
        }
    }
}
