//! Property-based tests for the core invariants of the TradeFL model:
//! Theorem 1 (exact weighted potential), Definition 5 (budget balance),
//! Eq. (5) (accuracy-model shape) and constraint handling.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use tradefl_core::accuracy::{AccuracyModel, LogAccuracy, PowerLawAccuracy, SqrtAccuracy};
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_core::mechanism::MechanismAudit;
use tradefl_core::strategy::{Strategy, StrategyProfile};

/// A random feasible profile for the market built from `seed`.
fn feasible_profile(
    game: &CoopetitionGame<SqrtAccuracy>,
    picks: &[(f64, u8)],
) -> StrategyProfile {
    (0..game.market().len())
        .map(|i| {
            let (t, lvl_pick) = picks[i % picks.len()];
            let m = game.market().org(i).compute_level_count();
            let mut level = (lvl_pick as usize) % m;
            // Find a level with a feasible range, preferring the pick.
            while game.market().feasible_range(i, level).is_none() {
                level = (level + 1) % m;
            }
            let (lo, hi) = game.market().feasible_range(i, level).unwrap();
            Strategy::new(lo + t * (hi - lo), level)
        })
        .collect()
}

fn any_game() -> impl PropStrategy<Value = CoopetitionGame<SqrtAccuracy>> {
    (0u64..1000, 2usize..8, 0.0f64..0.3).prop_map(|(seed, n, mu)| {
        let market = MarketConfig::table_ii()
            .with_orgs(n)
            .with_rho_mean(mu)
            .build(seed)
            .expect("table-ii config is always buildable");
        CoopetitionGame::new(market, SqrtAccuracy::paper_default())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: the exact potential satisfies identity (14) for every
    /// unilateral deviation, on random markets and random profiles.
    #[test]
    fn potential_identity_holds(
        game in any_game(),
        picks in proptest::collection::vec((0.0f64..=1.0, any::<u8>()), 8),
        dev_t in 0.0f64..=1.0,
        dev_level in any::<u8>(),
        who in any::<u8>(),
    ) {
        let profile = feasible_profile(&game, &picks);
        let i = (who as usize) % game.market().len();
        let m = game.market().org(i).compute_level_count();
        let mut level = (dev_level as usize) % m;
        while game.market().feasible_range(i, level).is_none() {
            level = (level + 1) % m;
        }
        let (lo, hi) = game.market().feasible_range(i, level).unwrap();
        let dev = Strategy::new(lo + dev_t * (hi - lo), level);
        let gap = game.potential_identity_gap(&profile, i, dev);
        // Scale-aware tolerance: payoffs are O(1e3).
        prop_assert!(gap < 1e-6, "identity gap {gap}");
    }

    /// Definition 5: redistribution is budget balanced for any profile on
    /// a symmetric competition matrix.
    #[test]
    fn budget_balance_holds(
        game in any_game(),
        picks in proptest::collection::vec((0.0f64..=1.0, any::<u8>()), 8),
    ) {
        let profile = feasible_profile(&game, &picks);
        let audit = MechanismAudit::evaluate(&game, &profile);
        prop_assert!(audit.budget_balanced_rel(1e-9),
            "sum R_i = {}", audit.redistribution_sum);
    }

    /// Redistribution is welfare-neutral: social welfare computed with and
    /// without the R_i terms agrees.
    #[test]
    fn redistribution_is_welfare_neutral(
        game in any_game(),
        picks in proptest::collection::vec((0.0f64..=1.0, any::<u8>()), 8),
    ) {
        let profile = feasible_profile(&game, &picks);
        let with_r = game.social_welfare(&profile);
        let without_r: f64 = (0..game.market().len())
            .map(|i| game.payoff_without_redistribution(&profile, i))
            .sum();
        prop_assert!((with_r - without_r).abs() <= 1e-6 * with_r.abs().max(1.0));
    }

    /// Eq. (5) on random sqrt-bound parameterizations: gain is
    /// non-decreasing and concave above the positive-gain threshold.
    #[test]
    fn sqrt_accuracy_shape(
        epochs in 1.0f64..50.0,
        scale in 1e9f64..1e12,
        a0 in 0.5f64..10.0,
        xs in proptest::collection::vec(0.01f64..=1.0, 3),
    ) {
        let m = SqrtAccuracy::new(epochs, scale, a0).unwrap();
        let floor = m.positive_gain_threshold();
        prop_assume!(floor.is_finite());
        let lo = floor * 1.001;
        let hi = floor * 1000.0;
        let mut pts: Vec<f64> = xs.iter().map(|t| lo + t * (hi - lo)).collect();
        pts.sort_by(f64::total_cmp);
        prop_assert!(m.gain(pts[0]) <= m.gain(pts[1]) + 1e-12);
        prop_assert!(m.gain(pts[1]) <= m.gain(pts[2]) + 1e-12);
        prop_assert!(m.gain_deriv(pts[0]) + 1e-15 >= m.gain_deriv(pts[1]));
        prop_assert!(m.gain_deriv(pts[1]) + 1e-15 >= m.gain_deriv(pts[2]));
    }

    /// Eq. (5) for the alternative models on arbitrary domains.
    #[test]
    fn alternative_models_shape(
        c in 0.1f64..10.0,
        scale in 1e8f64..1e11,
        alpha in 0.05f64..=1.0,
        a in 0.0f64..1e12,
        b in 0.0f64..1e12,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let log = LogAccuracy::new(c, scale).unwrap();
        let pl = PowerLawAccuracy::new(c, scale, alpha).unwrap();
        for m in [&log as &dyn AccuracyModel, &pl as &dyn AccuracyModel] {
            prop_assert!(m.gain(hi) + 1e-12 >= m.gain(lo));
            prop_assert!(m.gain_deriv(lo) + 1e-18 >= m.gain_deriv(hi));
            prop_assert!(m.gain_deriv(lo) >= 0.0);
        }
    }

    /// The minimal profile always validates, and validation accepts
    /// exactly the profiles inside the constraint set.
    #[test]
    fn minimal_profile_is_always_feasible(game in any_game()) {
        let p = StrategyProfile::minimal(game.market());
        prop_assert!(p.validate(game.market()).is_ok());
    }

    /// Shapley efficiency and non-negativity hold on random markets and
    /// profiles (monotone coalition game ⇒ non-negative values).
    #[test]
    fn shapley_axioms_hold(
        game in any_game(),
        picks in proptest::collection::vec((0.0f64..=1.0, any::<u8>()), 8),
    ) {
        use tradefl_core::contribution::shapley_accuracy;
        let profile = feasible_profile(&game, &picks);
        let report = shapley_accuracy(&game, &profile);
        let sum: f64 = report.values.iter().sum();
        let total = report.grand_value - report.empty_value;
        prop_assert!((sum - total).abs() <= 1e-9 * total.abs().max(1.0));
        for (i, v) in report.values.iter().enumerate() {
            prop_assert!(*v >= -1e-12, "negative shapley value {v} at org {i}");
        }
    }

    /// Payoff derivative in d_i is non-increasing (concavity of C_i in
    /// its own data fraction), which DBR's bisection relies on.
    #[test]
    fn payoff_is_concave_in_own_fraction(
        game in any_game(),
        picks in proptest::collection::vec((0.0f64..=1.0, any::<u8>()), 8),
        who in any::<u8>(),
    ) {
        let profile = feasible_profile(&game, &picks);
        let i = (who as usize) % game.market().len();
        let level = profile[i].level;
        let (lo, hi) = game.market().feasible_range(i, level).unwrap();
        let mut prev = f64::INFINITY;
        for k in 0..=8 {
            let d = lo + (hi - lo) * k as f64 / 8.0;
            let der = game.payoff_d_deriv(&profile.with(i, Strategy::new(d, level)), i);
            prop_assert!(der <= prev + 1e-9 * prev.abs().max(1.0));
            prev = der;
        }
    }
}
