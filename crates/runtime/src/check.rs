//! A seeded property-testing harness — the in-tree replacement for
//! `proptest`.
//!
//! Properties are written with the [`props!`] macro: each property is
//! a function of a generator context [`Gen`] that draws its inputs and
//! asserts with [`prop_assert!`]/[`prop_assert_eq!`], discarding
//! uninteresting cases with [`prop_assume!`].
//!
//! ```
//! use tradefl_runtime::{prop_assert, props};
//!
//! props! {
//!     #![cases = 32]
//!
//!     fn addition_commutes(g) {
//!         let a = g.f64(-1e6..1e6);
//!         let b = g.f64(-1e6..1e6);
//!         prop_assert!(a + b == b + a, "{a} + {b}");
//!     }
//! }
//! ```
//!
//! (The macro expands to ordinary `#[test]` functions, so properties
//! run under `cargo test` like any other test.)
//!
//! **Determinism & replay.** Every case seed derives from a pinned
//! base seed and the property's name, so runs are bit-identical across
//! machines and time. When a case fails, the panic message names the
//! case seed; re-run just that case with
//! `TRADEFL_PROP_SEED=<seed> cargo test <property_name>` (and
//! optionally `TRADEFL_PROP_SIZE=<f64>`).
//!
//! **Structural shrinking.** Every draw a case makes is recorded on a
//! *tape* of raw 64-bit generator outputs. On failure the harness
//! mutates the tape — truncating it (which shortens generated
//! vectors), zeroing entries (which zeroes fields), halving and
//! decrementing entries — and replays the property through the
//! mutated tape ([`Gen::from_tape`]), keeping every mutation that
//! still fails. The greedy descent ends at a local minimum: a
//! counterexample where no single truncation, zeroed field, halved or
//! decremented draw still exhibits the failure (see [`shrink`]).
//! Exhausted tapes read as zeros, so shorter tapes are always
//! well-defined.

use crate::rng::{Rng, SampleRange, SeedableRng, StdRng};
use std::ops::{Range, RangeInclusive};

/// Default number of cases per property (matching the budget the
/// previous proptest suites used most).
pub const DEFAULT_CASES: u32 = 32;

/// Pinned base seed; never derived from time or environment, so the
/// suite is reproducible by construction.
pub const BASE_SEED: u64 = 0x7452_6144_6546_4c31; // "TrRaDeFL1"

/// Why a case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseFail {
    /// The case's preconditions did not hold ([`prop_assume!`]); the
    /// harness draws a replacement case.
    Discard,
    /// A property assertion failed with this message.
    Fail(String),
}

impl CaseFail {
    /// Constructs the failing variant (used by the assertion macros).
    pub fn fail(msg: String) -> Self {
        CaseFail::Fail(msg)
    }
}

/// Outcome of one property case.
pub type CaseResult = Result<(), CaseFail>;

/// Where a [`Gen`]'s raw 64-bit draws come from.
#[derive(Debug)]
enum Source {
    /// Live generation: draws come from the seeded [`StdRng`] and are
    /// recorded on the tape for shrinking.
    Record { rng: StdRng, tape: Vec<u64> },
    /// Shrink replay: draws come off a (mutated) tape; an exhausted
    /// tape reads as zeros.
    Replay { tape: Vec<u64>, pos: usize },
}

impl Source {
    fn draw(&mut self) -> u64 {
        match self {
            Source::Record { rng, tape } => {
                let v = rng.next_u64();
                tape.push(v);
                v
            }
            Source::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        }
    }
}

/// Generator context handed to each property case.
///
/// All draws go through a deterministic source (a seeded [`StdRng`],
/// recorded on a shrink tape, or a replayed tape — see [`Source`])
/// and are scaled by the case's *size* in `(0, 1]`: at size 1 every
/// range is sampled in full; at smaller sizes ranges contract toward
/// their start and collections toward their minimum length.
#[derive(Debug)]
pub struct Gen {
    source: Source,
    size: f64,
}

/// Borrowed [`Rng`] view over a [`Gen`]'s draw source: every
/// `next_u64` goes through the tape machinery, so code that takes a
/// generic `Rng` still records/replays coherently.
#[derive(Debug)]
pub struct GenRng<'a>(&'a mut Source);

impl Rng for GenRng<'_> {
    fn next_u64(&mut self) -> u64 {
        self.0.draw()
    }
}

impl Gen {
    /// A live (recording) generator for one case.
    pub fn new(seed: u64, size: f64) -> Self {
        Gen {
            source: Source::Record { rng: StdRng::seed_from_u64(seed), tape: Vec::new() },
            size: size.clamp(0.001, 1.0),
        }
    }

    /// A generator replaying a shrink tape; draws past the end of the
    /// tape read as zeros.
    pub fn from_tape(tape: &[u64], size: f64) -> Self {
        Gen {
            source: Source::Replay { tape: tape.to_vec(), pos: 0 },
            size: size.clamp(0.001, 1.0),
        }
    }

    /// The size factor this case runs at.
    pub fn size(&self) -> f64 {
        self.size
    }

    /// The raw draws made so far (the shrink tape).
    pub fn tape(&self) -> &[u64] {
        match &self.source {
            Source::Record { tape, .. } => tape,
            Source::Replay { tape, .. } => tape,
        }
    }

    /// Access to the underlying generator as an [`Rng`] (for calling
    /// code that takes a generic generator). Draws made through it are
    /// recorded/replayed like any other.
    pub fn rng(&mut self) -> GenRng<'_> {
        GenRng(&mut self.source)
    }

    /// Uniform `f64` from a range, contracted by size.
    pub fn f64<R: ScaledRange<f64>>(&mut self, range: R) -> f64 {
        let size = self.size;
        range.scaled(size).sample_from(&mut self.rng())
    }

    /// Uniform `f32` from a half-open range, contracted by size.
    pub fn f32(&mut self, range: Range<f32>) -> f32 {
        let lo = range.start as f64;
        let hi = range.end as f64;
        self.f64(lo..hi) as f32
    }

    /// Uniform `usize` from a range, contracted by size.
    pub fn usize<R: ScaledRange<usize>>(&mut self, range: R) -> usize {
        let size = self.size;
        range.scaled(size).sample_from(&mut self.rng())
    }

    /// Uniform `u64` from a range, contracted by size.
    pub fn u64<R: ScaledRange<u64>>(&mut self, range: R) -> u64 {
        let size = self.size;
        range.scaled(size).sample_from(&mut self.rng())
    }

    /// Any `u64` (full width at size 1).
    pub fn any_u64(&mut self) -> u64 {
        if self.size >= 1.0 {
            self.rng().next_u64()
        } else {
            self.u64(0..=(u64::MAX as f64 * self.size) as u64)
        }
    }

    /// Any `u8` (size leaves the 256-value space alone; it is already
    /// minimal).
    pub fn any_u8(&mut self) -> u8 {
        (self.rng().next_u64() >> 56) as u8
    }

    /// Bernoulli draw.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng().gen_bool(p)
    }

    /// A vector whose length is drawn from `len`, elements from `f`.
    pub fn vec<T, R: ScaledRange<usize>>(
        &mut self,
        len: R,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Ranges that contract toward their start under a size factor.
pub trait ScaledRange<T>: SampleRange<T> {
    /// The contracted range (identity at `size = 1`).
    fn scaled(self, size: f64) -> Self;
}

impl ScaledRange<f64> for Range<f64> {
    fn scaled(self, size: f64) -> Self {
        if size >= 1.0 {
            return self;
        }
        let hi = self.start + (self.end - self.start) * size;
        // Keep the range non-empty: f64 ranges stay above start.
        self.start..hi.max(self.start + (self.end - self.start) * 1e-6)
    }
}

impl ScaledRange<f64> for RangeInclusive<f64> {
    fn scaled(self, size: f64) -> Self {
        if size >= 1.0 {
            return self;
        }
        let (lo, hi) = (*self.start(), *self.end());
        lo..=(lo + (hi - lo) * size)
    }
}

macro_rules! impl_scaled_int {
    ($($t:ty),*) => {$(
        impl ScaledRange<$t> for Range<$t> {
            fn scaled(self, size: f64) -> Self {
                if size >= 1.0 {
                    return self;
                }
                let span = (self.end - self.start) as f64;
                let hi = self.start + ((span * size).ceil() as $t).max(1);
                self.start..hi.min(self.end)
            }
        }
        impl ScaledRange<$t> for RangeInclusive<$t> {
            fn scaled(self, size: f64) -> Self {
                if size >= 1.0 {
                    return self;
                }
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi - lo) as f64;
                lo..=(lo + (span * size).ceil() as $t).min(hi)
            }
        }
    )*};
}

impl_scaled_int!(usize, u64);

/// Budget of property evaluations one shrink search may spend.
const MAX_SHRINK_EVALS: usize = 10_000;

/// A structurally shrunk counterexample (see [`shrink`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shrunk {
    /// The minimized draw tape; replay it with [`Gen::from_tape`].
    pub tape: Vec<u64>,
    /// The failure message the minimized case produces.
    pub msg: String,
    /// Property evaluations the search spent.
    pub evals: usize,
}

/// Shrinks the failing case at `seed` toward a minimal counterexample.
///
/// Records the failing run's draw tape, then greedily applies
/// failure-preserving mutations — truncate the tape (halving first,
/// which halves generated vectors), zero an entry (zeroing the field
/// it feeds), halve an entry, decrement an entry — restarting the
/// scan after each accepted mutation. Returns `None` when the case
/// does not fail (nothing to shrink). Deterministic: same property +
/// seed, same result.
pub fn shrink(prop: &impl Fn(&mut Gen) -> CaseResult, seed: u64) -> Option<Shrunk> {
    let mut g = Gen::new(seed, 1.0);
    let mut msg = match prop(&mut g) {
        Err(CaseFail::Fail(m)) => m,
        _ => return None,
    };
    let mut tape = g.tape().to_vec();
    let evals = std::cell::Cell::new(0usize);
    let fails = |tape: &[u64]| -> Option<String> {
        evals.set(evals.get() + 1);
        match prop(&mut Gen::from_tape(tape, 1.0)) {
            Err(CaseFail::Fail(m)) => Some(m),
            _ => None,
        }
    };

    'outer: while evals.get() < MAX_SHRINK_EVALS {
        // Pass 1 — truncation ladder (aggressive first): len/2,
        // 3·len/4, 7·len/8, len−1.
        let len = tape.len();
        let mut cuts: Vec<usize> = [2usize, 4, 8]
            .iter()
            .map(|d| len - len / d)
            .chain(std::iter::once(len.saturating_sub(1)))
            .filter(|&c| c < len)
            .collect();
        cuts.dedup();
        for cut in cuts {
            if let Some(m) = fails(&tape[..cut]) {
                tape.truncate(cut);
                msg = m;
                continue 'outer;
            }
            if evals.get() >= MAX_SHRINK_EVALS {
                break 'outer;
            }
        }
        // Pass 2 — per-entry reductions: zero, halve, geometric step
        // (−1/8 — keeps descent O(log value) when halving overshoots
        // but smaller steps still fail), and, for already-small
        // entries, decrement. Decrement is what pins exact integer
        // minima, but on a large raw entry it is O(value): a 2^60
        // entry whose −1 neighbor still fails (e.g. a probability
        // that barely moves) would eat the whole eval budget one
        // accept at a time, so it only applies below a cap that the
        // geometric ladder reaches quickly.
        const DECREMENT_CAP: u64 = 1 << 16;
        for i in 0..tape.len() {
            let orig = tape[i];
            if orig == 0 {
                continue;
            }
            let decrement = if orig <= DECREMENT_CAP { Some(orig - 1) } else { None };
            for cand in
                [Some(0), Some(orig / 2), Some(orig - orig / 8), decrement].into_iter().flatten()
            {
                if cand == orig {
                    continue;
                }
                tape[i] = cand;
                if let Some(m) = fails(&tape) {
                    msg = m;
                    continue 'outer;
                }
                if evals.get() >= MAX_SHRINK_EVALS {
                    tape[i] = orig;
                    break 'outer;
                }
            }
            tape[i] = orig;
        }
        break; // Local minimum: no mutation still fails.
    }
    // Trailing zeros are indistinguishable from an exhausted tape.
    while tape.last() == Some(&0) {
        tape.pop();
    }
    Some(Shrunk { tape, msg, evals: evals.get() })
}

/// Runs `cases` cases of a property, panicking with a replayable
/// report on the first failure.
///
/// # Panics
///
/// Panics when a case fails (after shrinking), or when the discard
/// budget (`cases * 16`) is exhausted — mirroring proptest's behavior
/// so over-restrictive `prop_assume!` filters are caught.
pub fn run_prop(name: &str, cases: u32, prop: impl Fn(&mut Gen) -> CaseResult) {
    // Replay path: one exact case, no search.
    if let Some(seed) = env_u64("TRADEFL_PROP_SEED") {
        let size = env_f64("TRADEFL_PROP_SIZE").unwrap_or(1.0);
        if let Err(CaseFail::Fail(msg)) = prop(&mut Gen::new(seed, size)) {
            // lint:allow(no-panic-in-lib): panicking is how the property harness fails a test
            panic!(
                "property '{name}' failed on replay \
                 (TRADEFL_PROP_SEED={seed:#x}, size {size}): {msg}"
            );
        }
        return;
    }

    let base = BASE_SEED ^ fnv1a(name.as_bytes());
    let mut discards: u64 = 0;
    let max_discards = cases as u64 * 16;
    let mut case: u64 = 0;
    let mut passed: u32 = 0;
    while passed < cases {
        let seed = mix(base.wrapping_add(case));
        case += 1;
        match prop(&mut Gen::new(seed, 1.0)) {
            Ok(()) => passed += 1,
            Err(CaseFail::Discard) => {
                discards += 1;
                assert!(
                    discards <= max_discards,
                    "property '{name}': discard budget exhausted \
                     ({discards} discards for {passed}/{cases} cases) — \
                     prop_assume! filters are too restrictive"
                );
            }
            Err(CaseFail::Fail(msg)) => {
                let shrunk_line = match shrink(&prop, seed) {
                    Some(s) if s.msg != msg => format!(
                        "\nshrunk to minimal counterexample \
                         ({} tape entries, {} evals): {}",
                        s.tape.len(),
                        s.evals,
                        s.msg
                    ),
                    Some(s) => format!(
                        "\nalready minimal ({} tape entries, {} shrink evals)",
                        s.tape.len(),
                        s.evals
                    ),
                    None => String::new(),
                };
                // lint:allow(no-panic-in-lib): panicking is how the property harness fails a test
                panic!(
                    "property '{name}' failed (case {case}, seed {seed:#x}): \
                     {msg}{shrunk_line}\n\
                     replay: TRADEFL_PROP_SEED={seed:#x} cargo test {name}"
                );
            }
        }
    }
}

/// FNV-1a over bytes — stable property-name hashing (std's `Hasher`
/// is not guaranteed stable across releases).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — decorrelates sequential case indices.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// A set-but-malformed replay variable panics instead of being
// ignored: silently falling back to the normal search would make the
// user believe they replayed the failing case.
fn env_u64(key: &str) -> Option<u64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    };
    Some(parsed.unwrap_or_else(|| {
        // lint:allow(no-panic-in-lib): a garbled replay env var in a dev harness should fail loudly
        panic!("{key}={raw:?} is not a u64 (use decimal or 0x-prefixed hex)")
    }))
}

fn env_f64(key: &str) -> Option<f64> {
    let raw = std::env::var(key).ok()?;
    let raw = raw.trim();
    // lint:allow(no-panic-in-lib): a garbled replay env var in a dev harness should fail loudly
    Some(raw.parse().unwrap_or_else(|_| panic!("{key}={raw:?} is not a number")))
}

/// Declares seeded property tests. See the [module docs](self) for the
/// shape; an optional `#![cases = N]` header sets the per-property
/// case count (default [`DEFAULT_CASES`]).
#[macro_export]
macro_rules! props {
    (#![cases = $cases:expr] $($rest:tt)*) => {
        $crate::__props_internal! { $cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__props_internal! { $crate::check::DEFAULT_CASES; $($rest)* }
    };
}

/// Implementation detail of [`props!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __props_internal {
    ($cases:expr; $( $(#[$meta:meta])* fn $name:ident($g:ident) $body:block )*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::check::run_prop(
                    stringify!($name),
                    $cases,
                    |$g: &mut $crate::check::Gen| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can shrink and report a replay seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::CaseFail::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::check::CaseFail::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return Err($crate::check::CaseFail::fail(format!(
                "equality failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                lhs,
                rhs
            )));
        }
    }};
}

/// Discards the current case when its precondition does not hold; the
/// harness draws a replacement (bounded by the discard budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::check::CaseFail::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run_prop("always_true", 10, |g| {
            let _ = g.f64(0.0..1.0);
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_panics_with_replay_seed() {
        let result = std::panic::catch_unwind(|| {
            run_prop("always_false", 10, |_| {
                Err(CaseFail::Fail("boom".into()))
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("TRADEFL_PROP_SEED"), "replay hint in: {msg}");
        assert!(msg.contains("boom"), "original message in: {msg}");
    }

    #[test]
    fn discard_budget_is_enforced() {
        let result = std::panic::catch_unwind(|| {
            run_prop("discards_everything", 4, |_| Err(CaseFail::Discard));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discard budget"), "{msg}");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            run_prop("deterministic", 8, |g| {
                seen.borrow_mut().push((g.any_u64(), g.usize(0..100)));
                Ok(())
            });
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn sizes_contract_generator_ranges() {
        let mut big = Gen::new(7, 1.0);
        let mut small = Gen::new(7, 0.05);
        for _ in 0..100 {
            assert!(big.f64(0.0..1000.0) < 1000.0);
            assert!(small.f64(0.0..1000.0) <= 50.0 + 1e-9);
            assert!(small.usize(0..100) <= 5);
        }
    }

    #[test]
    fn vec_lengths_follow_the_requested_range() {
        let mut g = Gen::new(11, 1.0);
        for _ in 0..50 {
            let v = g.vec(2..6usize, |g| g.any_u8());
            assert!((2..6).contains(&v.len()));
        }
    }

    // ---- structural shrinking ------------------------------------------

    /// Fails iff `x >= 10 && y >= 1`: the unique minimal counterexample
    /// is `(10, 1)`.
    fn scalar_prop(g: &mut Gen) -> CaseResult {
        let x = g.u64(0..1000);
        let y = g.u64(0..1000);
        if x >= 10 && y >= 1 {
            return Err(CaseFail::fail(format!("x={x} y={y}")));
        }
        Ok(())
    }

    fn failing_seed(prop: impl Fn(&mut Gen) -> CaseResult) -> u64 {
        (0..10_000u64)
            .find(|&s| matches!(prop(&mut Gen::new(s, 1.0)), Err(CaseFail::Fail(_))))
            .expect("some seed fails")
    }

    #[test]
    fn shrink_pins_the_minimal_scalar_counterexample() {
        let seed = failing_seed(scalar_prop);
        let s = shrink(&scalar_prop, seed).expect("the seed fails, so shrink reports");
        assert_eq!(s.msg, "x=10 y=1", "greedy descent reaches the unique minimum");
        assert!(s.evals <= MAX_SHRINK_EVALS);
        // The shrunk tape replays to the same failure.
        assert_eq!(
            scalar_prop(&mut Gen::from_tape(&s.tape, 1.0)),
            Err(CaseFail::fail("x=10 y=1".into()))
        );
    }

    #[test]
    fn shrink_halves_vectors_toward_minimal_length() {
        // Fails while the vector has >= 3 elements; minimal failing
        // length is exactly 3.
        let prop = |g: &mut Gen| {
            let v = g.vec(0..40usize, |g| g.u64(0..100));
            if v.len() >= 3 {
                return Err(CaseFail::fail(format!("len={}", v.len())));
            }
            Ok(())
        };
        let seed = failing_seed(prop);
        let s = shrink(&prop, seed).expect("seed fails");
        assert_eq!(s.msg, "len=3");
    }

    #[test]
    fn shrink_zeroes_irrelevant_fields() {
        // Only the first draw matters; shrinking must zero the noise
        // draws so the tape strips down to a single entry.
        let prop = |g: &mut Gen| {
            let x = g.u64(0..1000);
            let _noise = (g.any_u64(), g.any_u64(), g.any_u64());
            if x >= 1 {
                return Err(CaseFail::fail(format!("x={x}")));
            }
            Ok(())
        };
        let seed = failing_seed(prop);
        let s = shrink(&prop, seed).expect("seed fails");
        assert_eq!(s.msg, "x=1");
        assert_eq!(s.tape.len(), 1, "noise draws shrink away: {:?}", s.tape);
    }

    #[test]
    fn shrink_returns_none_for_passing_cases() {
        assert_eq!(shrink(&|_| Ok(()), 1), None);
        assert_eq!(shrink(&|_| Err(CaseFail::Discard), 1), None);
    }

    #[test]
    fn shrink_is_deterministic() {
        let seed = failing_seed(scalar_prop);
        assert_eq!(shrink(&scalar_prop, seed), shrink(&scalar_prop, seed));
    }

    #[test]
    fn failure_report_includes_the_shrunk_counterexample() {
        let result = std::panic::catch_unwind(|| {
            run_prop("shrinks_to_minimum", 5, |g| scalar_prop(g));
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("x=10 y=1"), "shrunk counterexample in: {msg}");
        assert!(msg.contains("TRADEFL_PROP_SEED"), "replay hint in: {msg}");
    }

    #[test]
    fn tape_replay_reads_zeros_past_the_end() {
        let mut g = Gen::from_tape(&[], 1.0);
        assert_eq!(g.u64(0..100), 0);
        assert_eq!(g.usize(5..50), 5);
        assert!(g.bool(0.5), "a zero draw maps to gen_f64() == 0.0 < p");
    }

    #[test]
    fn recorded_tape_replays_identically() {
        let draw_all = |g: &mut Gen| (g.u64(0..1000), g.f64(0.0..1.0), g.vec(0..9usize, |g| g.any_u8()));
        let mut live = Gen::new(42, 1.0);
        let a = draw_all(&mut live);
        let mut replay = Gen::from_tape(live.tape(), 1.0);
        let b = draw_all(&mut replay);
        assert_eq!(a.0, b.0);
        assert!((a.1 - b.1).abs() < 1e-12);
        assert_eq!(a.2, b.2);
    }

    props! {
        #![cases = 8]

        /// The macro surface compiles and runs end to end.
        fn props_macro_smoke(g) {
            let a = g.f64(0.0..=1.0);
            let v = g.vec(1..4usize, |g| g.usize(0..10));
            prop_assume!(!v.is_empty());
            prop_assert!((0.0..=1.0).contains(&a));
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
