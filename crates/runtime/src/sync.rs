//! Synchronization primitives over `std::sync`, with the
//! `parking_lot`-style ergonomics the workspace uses: `lock()`,
//! `read()` and `write()` return guards directly instead of
//! `Result`s.
//!
//! Lock poisoning is deliberately transparent: a panic while holding a
//! lock does not brick every other holder. The workspace's shared
//! state (the in-process chain node behind [`crate::sync::Mutex`]) is
//! consistent at every public API boundary, so continuing after an
//! unwinding panic in an unrelated thread is sound here — exactly the
//! rationale `parking_lot` applies globally.
//!
//! Scoped fork/join helpers ([`scope`]) and mpsc channels
//! ([`channel`]) cover what `crossbeam` provided for the bench
//! harness. The [`pool`] submodule adds the work-stealing pool the
//! solver and FL hot paths run on; [`parallel_map`] is now a thin
//! fork/join veneer over it.

pub mod pool;

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison-transparent.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Poison-transparent.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Scoped fork/join: spawned threads may borrow from the enclosing
/// stack frame and are all joined before `scope` returns (the
/// `crossbeam::scope` pattern, provided by std since 1.63).
pub use std::thread::scope;

/// Condition variable (std's; pairs with this module's [`Mutex`]
/// because its guards are std guards).
pub use std::sync::Condvar;

/// Re-export of the scope handle type for signatures.
pub use std::thread::Scope;

/// Multi-producer single-consumer channels (the `crossbeam::channel`
/// subset the bench harness needs).
pub mod channel {
    pub use std::sync::mpsc::{channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError};

    /// Unbounded channel (crossbeam naming).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel()
    }

    /// Bounded channel (crossbeam naming).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        sync_channel(cap)
    }
}

/// Runs `jobs` closures on up to `workers` scoped threads and returns
/// their results in input order — the fork/join shape the bench
/// harness uses for embarrassingly parallel sweeps. Backed by the
/// work-stealing [`pool::Pool`].
///
/// # Panics
///
/// Re-raises the first panic from any job **with its original
/// payload** (a panicking job no longer surfaces as the opaque
/// "a scoped thread panicked" join error, and never wedges the other
/// workers).
pub fn parallel_map<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(workers > 0, "parallel_map needs at least one worker");
    pool::Pool::new(workers).map(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let got = parallel_map(4, jobs);
        assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_propagates_the_original_panic_payload() {
        // Regression: the fork/join implementation used to surface job
        // panics as std's opaque scope-join panic (or, with a poisoned
        // slot mutex, hang follow-up lockers). The pool must re-raise
        // the job's own payload.
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..6usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        std::panic::panic_any(format!("job {i} exploded"));
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map(2, jobs)
        }))
        .unwrap_err();
        assert_eq!(
            err.downcast_ref::<String>().expect("payload preserved"),
            "job 3 exploded"
        );
    }

    #[test]
    fn channels_deliver() {
        let (tx, rx) = channel::unbounded();
        scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
