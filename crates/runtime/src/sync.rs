//! Synchronization primitives over `std::sync`, with the
//! `parking_lot`-style ergonomics the workspace uses: `lock()`,
//! `read()` and `write()` return guards directly instead of
//! `Result`s.
//!
//! Lock poisoning is deliberately transparent: a panic while holding a
//! lock does not brick every other holder. The workspace's shared
//! state (the in-process chain node behind [`crate::sync::Mutex`]) is
//! consistent at every public API boundary, so continuing after an
//! unwinding panic in an unrelated thread is sound here — exactly the
//! rationale `parking_lot` applies globally.
//!
//! Scoped fork/join helpers ([`scope`]) and mpsc channels
//! ([`channel`]) cover what `crossbeam` provided for the bench
//! harness.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` never returns `Err`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; releases on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison-transparent.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock whose accessors never return `Err`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Poison-transparent.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Poison-transparent.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Scoped fork/join: spawned threads may borrow from the enclosing
/// stack frame and are all joined before `scope` returns (the
/// `crossbeam::scope` pattern, provided by std since 1.63).
pub use std::thread::scope;

/// Re-export of the scope handle type for signatures.
pub use std::thread::Scope;

/// Multi-producer single-consumer channels (the `crossbeam::channel`
/// subset the bench harness needs).
pub mod channel {
    pub use std::sync::mpsc::{channel, sync_channel, Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError};

    /// Unbounded channel (crossbeam naming).
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel()
    }

    /// Bounded channel (crossbeam naming).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        sync_channel(cap)
    }
}

/// Runs `jobs` closures on up to `workers` scoped threads and returns
/// their results in input order — the fork/join shape the bench
/// harness uses for embarrassingly parallel sweeps.
///
/// # Panics
///
/// Propagates the first panic from any job.
pub fn parallel_map<T, F>(workers: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    assert!(workers > 0, "parallel_map needs at least one worker");
    let n = jobs.len();
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = Mutex::new(0usize);
    // Hand each worker the shared job list behind a mutex of indexed
    // thunks; jobs are pulled in order so results land in order.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<&mut Option<T>>> = out.iter_mut().map(Mutex::new).collect();
    scope(|s| {
        for _ in 0..workers.min(n.max(1)) {
            s.spawn(|| loop {
                let i = {
                    let mut guard = next.lock();
                    let i = *guard;
                    *guard += 1;
                    i
                };
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().take().expect("job taken once");
                let result = job();
                **slots[i].lock() = Some(result);
            });
        }
    });
    out.into_iter().map(|v| v.expect("every job ran")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(1);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 2);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let jobs: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let got = parallel_map(4, jobs);
        assert_eq!(got, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn channels_deliver() {
        let (tx, rx) = channel::unbounded();
        scope(|s| {
            s.spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
        });
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}
