//! Seedable pseudo-random number generation.
//!
//! [`StdRng`] is xoshiro256++ (Blackman & Vigna) seeded through
//! SplitMix64, the standard recipe for expanding a 64-bit seed into a
//! full 256-bit state without correlated lanes. The trait surface
//! mirrors the subset of `rand` 0.8 the workspace uses, so call sites
//! migrate with a one-line import swap:
//!
//! ```
//! use tradefl_runtime::rng::{Rng, SeedableRng, SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! let k = rng.gen_range(0..10usize);
//! let mut v = vec![1, 2, 3, 4];
//! v.shuffle(&mut rng);
//! assert!((0.0..1.0).contains(&x) && k < 10 && v.len() == 4);
//! ```
//!
//! Everything is deterministic per seed and stable across platforms:
//! the generator never consults the OS, the clock or pointer layout.

use std::ops::{Range, RangeInclusive};

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advances `state` and returns a mixed output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_GAMMA);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seedable generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from 32 bytes of seed material.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a 64-bit seed into full state (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            // lint:allow(no-panic-in-lib): chunks_exact(8) only yields 8-byte chunks
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; reseed it.
        if s == [0; 4] {
            return Self::seed_from_u64(0);
        }
        StdRng { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for lane in &mut s {
            *lane = splitmix64(&mut state);
        }
        StdRng { s }
    }
}

impl StdRng {
    /// The raw xoshiro256++ output step.
    fn step(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform sampling from a range, dispatched on the range type.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Uniform `u64` in `[0, bound)` by rejection, bias-free.
fn bounded_u64<G: Rng + ?Sized>(rng: &mut G, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Reject draws from the final partial copy of `[0, bound)`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range {:?}", self);
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty gen_range {:?}", self);
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Rounding may land exactly on `end`; clamp into the half-open
        // interval to honor the contract at every scale.
        if v >= self.end {
            self.start.max(self.end - (self.end - self.start) * f64::EPSILON)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range {lo}..={hi}");
        lo + rng.gen_f64() * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f32 {
        let v: f64 = (self.start as f64..self.end as f64).sample_from(rng);
        (v as f32).clamp(self.start, f32_pred(self.end))
    }
}

/// The largest `f32` strictly below `x` (for half-open clamping).
fn f32_pred(x: f32) -> f32 {
    if x > f32::MIN {
        f32::from_bits(x.to_bits() - 1)
    } else {
        x
    }
}

/// The generator methods used across the workspace.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `range` (half-open or inclusive, int or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0,1]");
        self.gen_f64() < p
    }

    /// Standard-normal draw via Box–Muller (one of the pair).
    fn gen_gaussian(&mut self) -> f64 {
        let u1 = self.gen_f64().max(f64::EPSILON);
        let u2 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with mean `mu` and standard deviation `sigma`.
    fn gen_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.gen_gaussian()
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// In-place randomization of slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle, uniform over permutations.
    fn shuffle<G: Rng>(&mut self, rng: &mut G);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<G: Rng>(&self, rng: &mut G) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<G: Rng>(&mut self, rng: &mut G) {
        for i in (1..self.len()).rev() {
            let j = bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<G: Rng>(&self, rng: &mut G) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn float_range_is_half_open_even_when_tiny() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!(v >= f64::EPSILON && v < 1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.gen_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn from_seed_bytes_matches_lanes() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        let rng = StdRng::from_seed(seed);
        assert_eq!(rng.s[0], 1);
        // All-zero seed still yields a working generator.
        let mut z = StdRng::from_seed([0; 32]);
        assert_ne!(z.next_u64(), z.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
