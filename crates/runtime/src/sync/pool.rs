//! A zero-dependency work-stealing thread pool.
//!
//! [`Pool`] runs batches of closures across worker threads with the
//! classic work-stealing shape: each worker owns a deque it pops LIFO
//! (hot caches for locality), a global injector feeds overflow, and an
//! idle worker steals FIFO from the front of a sibling's deque (the
//! oldest — and usually largest — pending unit of work).
//!
//! Two deliberate design points, both downstream of the workspace's
//! `#![forbid(unsafe_code)]`:
//!
//! * **Scoped workers, not resident threads.** A resident pool running
//!   closures that borrow the caller's stack requires lifetime erasure
//!   (`unsafe`). Instead every [`Pool::scope`] call stands up its
//!   workers inside [`std::thread::scope`], which makes borrowed tasks
//!   sound for free. Spawn cost (~tens of µs per worker) is noise for
//!   the solver/FL workloads this pool serves, whose tasks are in the
//!   hundreds-of-µs-to-ms range; [`Pool::map`] falls back to inline
//!   execution for single-worker pools and single-job batches so the
//!   serial path pays nothing.
//! * **Determinism is the caller's contract, not the scheduler's.**
//!   Task *execution order* is nondeterministic; every combinator here
//!   returns results **in input order**, so any caller that merges
//!   results positionally (as the solver and FL hot paths do) is
//!   bit-identical for every worker count, including 1. This is the
//!   threading contract `tests/determinism.rs` pins.
//!
//! Worker count resolution: `TRADEFL_THREADS` (clamped to `1..=256`)
//! overrides [`std::thread::available_parallelism`] for
//! [`Pool::global`].
//!
//! # Panics
//!
//! A panicking task does not hang or poison the pool: the first
//! panic's **original payload** is captured and re-raised on the
//! calling thread once the scope has drained (remaining queued tasks
//! are abandoned, running ones finish).

use super::{Condvar, Mutex};
use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

/// A boxed unit of work queued on the pool.
type Task<'t> = Box<dyn FnOnce() + Send + 't>;

/// Work-stealing thread pool handle. Cheap to create; worker threads
/// are stood up per [`Pool::scope`]/[`Pool::map`] call (see the module
/// docs for why).
#[derive(Debug, Clone)]
pub struct Pool {
    workers: usize,
}

/// Scheduling state shared between the scope body and the workers.
struct Shared<'t> {
    /// Global FIFO injector: tasks not yet assigned to a worker.
    injector: Mutex<VecDeque<Task<'t>>>,
    /// Per-worker deques: owner pops back (LIFO), thieves pop front.
    deques: Vec<Mutex<VecDeque<Task<'t>>>>,
    /// Counters + shutdown flag guarded by one short-lived lock.
    state: Mutex<State>,
    /// Wakes idle workers on spawn and on close.
    signal: Condvar,
    /// First panic payload raised by a task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

#[derive(Debug, Default)]
struct State {
    /// Tasks currently sitting in the injector or any deque.
    queued: usize,
    /// Set once the scope body has returned (or unwound): no further
    /// spawns can happen, workers drain and exit.
    closed: bool,
    /// Set on the first task panic: pending tasks are dropped instead
    /// of run, so the payload surfaces promptly.
    aborted: bool,
    /// Round-robin cursor for assigning spawned tasks to deques.
    next_deque: usize,
}

impl<'t> Shared<'t> {
    fn new(workers: usize) -> Self {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            state: Mutex::new(State::default()),
            signal: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Queues a task on the next deque in round-robin order (the
    /// injector catches overflow only via stealing misses, keeping the
    /// common path contention-free on the owner's deque).
    fn push(&self, task: Task<'t>) {
        let target = {
            let mut st = self.state.lock();
            st.queued += 1;
            let t = st.next_deque;
            st.next_deque = (st.next_deque + 1) % self.deques.len();
            t
        };
        self.deques[target].lock().push_back(task);
        self.signal.notify_one();
    }

    /// Takes one task: own deque back, then injector front, then steal
    /// a sibling's front. Returns `None` when every queue is empty; the
    /// flag says whether the task was stolen from a sibling's deque.
    fn grab(&self, me: usize) -> Option<(Task<'t>, bool)> {
        if let Some(t) = self.deques[me].lock().pop_back() {
            return Some((t, false));
        }
        if let Some(t) = self.injector.lock().pop_front() {
            return Some((t, false));
        }
        let n = self.deques.len();
        for k in 1..n {
            if let Some(t) = self.deques[(me + k) % n].lock().pop_front() {
                return Some((t, true));
            }
        }
        None
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
        drop(slot);
        self.state.lock().aborted = true;
    }

    /// Marks the scope closed and wakes everyone so workers can exit.
    fn close(&self) {
        self.state.lock().closed = true;
        self.signal.notify_all();
    }

    fn worker_loop(&self, me: usize) {
        // Telemetry is tallied in plain locals and flushed when the
        // worker runs dry (just before parking or exiting), so the
        // per-task path costs nothing even with the recorder enabled —
        // and long-lived pools (the global one never exits) still
        // surface their counts at every idle point.
        let (mut executed, mut stolen) = (0u64, 0u64);
        loop {
            if let Some((task, was_stolen)) = self.grab(me) {
                let run = {
                    let mut st = self.state.lock();
                    st.queued -= 1;
                    !st.aborted
                };
                if run {
                    executed += 1;
                    stolen += u64::from(was_stolen);
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        self.record_panic(payload);
                    }
                } else {
                    drop(task);
                }
                continue;
            }
            flush_worker_telemetry(me, executed, stolen);
            (executed, stolen) = (0, 0);
            let st = self.state.lock();
            // Re-check under the lock: a push between `grab` and here
            // bumps `queued`, so we cannot miss a wake-up.
            if st.queued > 0 {
                continue;
            }
            if st.closed {
                return;
            }
            drop(self.signal.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner));
        }
    }
}

/// Closes the shared state when the scope body exits — including by
/// panic, so workers never wait forever on a scope that unwound.
struct CloseOnDrop<'s, 't>(&'s Shared<'t>);

impl Drop for CloseOnDrop<'_, '_> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Spawn handle passed to the closure of [`Pool::scope`].
pub struct PoolScope<'s, 't> {
    shared: &'s Shared<'t>,
}

impl std::fmt::Debug for PoolScope<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolScope").finish_non_exhaustive()
    }
}

impl<'s, 't> PoolScope<'s, 't> {
    /// Queues `task` for execution by the scope's workers. Tasks may
    /// borrow anything that outlives the [`Pool::scope`] call.
    pub fn spawn(&self, task: impl FnOnce() + Send + 't) {
        self.shared.push(Box::new(task));
    }
}

/// The host's available hardware parallelism — the sanctioned wrapper
/// around [`std::thread::available_parallelism`] for everything in the
/// workspace (pool sizing, bench metadata). Falls back to `1` when the
/// OS cannot answer, so the result is always a usable worker count.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

impl Pool {
    /// A pool handle with exactly `workers` worker threads per scope
    /// (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool { workers: workers.max(1) }
    }

    /// The process-wide pool: `TRADEFL_THREADS` if set, else
    /// [`host_parallelism`]. Resolved once.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            Pool::new(
                thread_override(std::env::var("TRADEFL_THREADS").ok().as_deref())
                    .unwrap_or_else(host_parallelism),
            )
        })
    }

    /// Number of worker threads a scope of this pool runs.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `body` with a spawn handle; every spawned task completes
    /// before `scope` returns. The first task panic is re-raised here
    /// with its original payload after the scope drains.
    pub fn scope<'t, R>(&self, body: impl FnOnce(&PoolScope<'_, 't>) -> R) -> R {
        let shared: Shared<'t> = Shared::new(self.workers);
        let out = std::thread::scope(|s| {
            for w in 0..self.workers {
                let shared = &shared;
                s.spawn(move || shared.worker_loop(w));
            }
            let _closer = CloseOnDrop(&shared);
            body(&PoolScope { shared: &shared })
        });
        if let Some(payload) = shared.panic.lock().take() {
            resume_unwind(payload);
        }
        out
    }

    /// Runs every job and returns the results **in input order**
    /// (execution order is up to the scheduler). Single-worker pools
    /// and single-job batches run inline without spawning threads.
    ///
    /// # Panics
    ///
    /// Re-raises the first job panic with its original payload.
    pub fn map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.workers == 1 || jobs.len() <= 1 {
            if !jobs.is_empty() {
                flush_worker_telemetry(0, jobs.len() as u64, 0);
            }
            return jobs.into_iter().map(|j| j()).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.scope(|s| {
            for (slot, job) in slots.iter().zip(jobs) {
                s.spawn(move || {
                    *slot.lock() = Some(job());
                });
            }
        });
        // lint:allow(no-panic-in-lib): the scope join above guarantees every slot was filled
        slots.into_iter().map(|m| m.into_inner().expect("pool scope ran every job")).collect()
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. Indices are grouped into contiguous chunks (a few per
    /// worker) so per-task overhead amortizes while stealing can still
    /// rebalance uneven chunks.
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if self.workers == 1 || n <= 1 {
            if n > 0 {
                flush_worker_telemetry(0, n as u64, 0);
            }
            return (0..n).map(f).collect();
        }
        let chunk = n.div_ceil(self.workers * CHUNKS_PER_WORKER).max(1);
        let ranges: Vec<std::ops::Range<usize>> =
            (0..n).step_by(chunk).map(|lo| lo..(lo + chunk).min(n)).collect();
        let f = &f;
        self.map(
            ranges
                .into_iter()
                .map(|r| move || r.map(f).collect::<Vec<T>>())
                .collect(),
        )
        .into_iter()
        .flatten()
        .collect()
    }
}

/// How many stealable chunks [`Pool::map_indexed`] cuts per worker.
const CHUNKS_PER_WORKER: usize = 4;

/// Records one worker's scope totals into [`crate::obs`]. Per-worker
/// attribution and steal counts are scheduling-dependent by nature, so
/// they are metrics (counters), never logical-clock events — the
/// determinism suite compares event streams only (DESIGN.md §9).
fn flush_worker_telemetry(me: usize, executed: u64, stolen: u64) {
    if !crate::obs::is_enabled() || executed == 0 {
        return;
    }
    crate::obs::counter_add("pool.tasks_executed", executed);
    crate::obs::counter_add(&format!("pool.worker{me}.tasks_executed"), executed);
    if stolen > 0 {
        crate::obs::counter_add("pool.tasks_stolen", stolen);
        crate::obs::counter_add(&format!("pool.worker{me}.tasks_stolen"), stolen);
    }
}

/// Parses a `TRADEFL_THREADS` value (whitespace tolerated), clamping
/// the result to `1..=256`: `"0"` means "explicitly serial" and lands
/// on 1 worker — it must never produce a 0-worker pool *or* silently
/// fall through to the detected parallelism, which would make
/// `TRADEFL_THREADS=0` run many-threaded. Unset, empty, or unparsable
/// values return `None` (the caller falls back to the detected
/// parallelism).
pub fn thread_override(raw: Option<&str>) -> Option<usize> {
    let n: usize = raw?.trim().parse().ok()?;
    Some(n.clamp(1, 256))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_returns_results_in_input_order() {
        for workers in [1, 2, 4, 8] {
            let pool = Pool::new(workers);
            let jobs: Vec<_> = (0..53).map(|i| move || i * 3).collect();
            assert_eq!(pool.map(jobs), (0..53).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_indexed_matches_serial_for_every_worker_count() {
        let serial: Vec<u64> = (0..1000u64).map(|i| i * i + 1).collect();
        for workers in [1, 2, 3, 7] {
            let got = Pool::new(workers).map_indexed(1000, |i| (i as u64) * (i as u64) + 1);
            assert_eq!(got, serial, "workers = {workers}");
        }
    }

    #[test]
    fn host_parallelism_is_a_usable_worker_count() {
        assert!(host_parallelism() >= 1);
    }

    #[test]
    fn scope_runs_borrowed_tasks_with_stealing() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panic_payload_is_propagated_verbatim() {
        let pool = Pool::new(3);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..8).map(|i| move || {
                if i == 5 {
                    std::panic::panic_any(String::from("original payload 5"));
                }
                i
            }).collect::<Vec<_>>());
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("payload type preserved");
        assert_eq!(msg, "original payload 5");
    }

    #[test]
    fn panic_in_scope_body_does_not_hang_workers() {
        let pool = Pool::new(2);
        let err = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                panic!("scope body panic");
            })
        }))
        .unwrap_err();
        assert_eq!(*err.downcast_ref::<&str>().unwrap(), "scope body panic");
    }

    #[test]
    fn empty_and_single_job_batches_run_inline() {
        let pool = Pool::new(4);
        let empty: Vec<fn() -> u8> = Vec::new();
        assert!(pool.map(empty).is_empty());
        assert_eq!(pool.map(vec![|| 9u8]), vec![9]);
        assert!(pool.map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn thread_override_parses_and_clamps() {
        // Table-driven: raw value -> expected resolution. `"0"` must
        // clamp to 1 (explicitly serial), never 0 workers and never a
        // silent fall-through to detected parallelism.
        let table: &[(Option<&str>, Option<usize>)] = &[
            (None, None),
            (Some(""), None),
            (Some("   "), None),
            (Some("0"), Some(1)),
            (Some(" 0 "), Some(1)),
            (Some("1"), Some(1)),
            (Some("4"), Some(4)),
            (Some(" 8 "), Some(8)),
            (Some(" 12 "), Some(12)),
            (Some("256"), Some(256)),
            (Some("257"), Some(256)),
            (Some("100000"), Some(256)),
            (Some("abc"), None),
            (Some("nope"), None),
            (Some("-1"), None),
            (Some("1.5"), None),
        ];
        for &(raw, expected) in table {
            assert_eq!(thread_override(raw), expected, "raw = {raw:?}");
        }
    }

    #[test]
    fn zero_worker_pool_is_impossible() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::new(usize::MAX).workers(), usize::MAX); // Pool::new clamps low only
        let jobs: Vec<_> = (0..4).map(|i| move || i * 2).collect();
        assert_eq!(Pool::new(0).map(jobs), vec![0, 2, 4, 6]);
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        assert!(Pool::global().workers() >= 1);
    }
}
