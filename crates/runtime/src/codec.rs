//! Byte-oriented encoding: a growable write buffer ([`BytesMut`]), a
//! cursor trait over `&[u8]` ([`Buf`]), and the
//! [`ByteEncode`]/[`ByteDecode`] serialization traits with the
//! derive-free [`impl_codec!`] macro.
//!
//! Multi-byte integers have explicit endianness at every call site:
//! `put_u64` / `get_u64` are big-endian (the network order the ledger
//! hashes over), `put_u64_le` / `get_u64_le` are little-endian (the
//! chain export format). Nothing is implicit, so encoded bytes are
//! identical on every platform.

use std::fmt;
use std::ops::Deref;

/// A growable byte buffer with endian-explicit write methods — the
/// subset of `bytes::BytesMut` the ledger codec uses.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, big-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32`, big-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, big-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, big-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn put_u128_le(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i128`, big-endian.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `i128`, little-endian.
    pub fn put_i128_le(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `u64` as an LEB128 varint (1–10 bytes, low groups
    /// first, high bit set on every byte but the last). Small counts
    /// and lengths — the overwhelming majority on the wire — take a
    /// single byte instead of eight.
    pub fn put_uvarint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Appends a varint length prefix followed by the bytes themselves.
    pub fn put_varint_slice(&mut self, v: &[u8]) {
        self.put_uvarint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Consumes the buffer, yielding its bytes without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// A read cursor over bytes — the subset of `bytes::Buf` the ledger
/// decoder uses, implemented for `&[u8]` so `&mut &[u8]` advances in
/// place.
///
/// # Panics
///
/// Like `bytes`, the `get_*`/`advance`/`take_slice` methods panic when
/// fewer bytes remain than requested — they are for *trusted* input
/// whose length the caller already established. Anything decoding
/// **untrusted peer bytes** must use the fallible `try_*` family (or
/// [`ByteDecode`]), which maps shortfall to [`DecodeError::Truncated`]
/// instead of aborting the process.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads the next `n` bytes as a slice without copying.
    fn take_slice(&mut self, n: usize) -> &[u8];

    /// Fallible [`Buf::take_slice`]: `Err(Truncated)` instead of a
    /// panic when fewer than `n` bytes remain (the cursor is left
    /// unmoved on failure).
    fn try_take_slice(&mut self, n: usize) -> Result<&[u8], DecodeError>;

    /// Fallible [`Buf::advance`].
    fn try_advance(&mut self, n: usize) -> Result<(), DecodeError> {
        self.try_take_slice(n).map(|_| ())
    }

    /// Fallible [`Buf::get_u8`].
    fn try_get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.try_take_slice(1)?[0])
    }

    /// Fallible [`Buf::get_u64`] (big-endian).
    fn try_get_u64(&mut self) -> Result<u64, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(u64::from_be_bytes(self.try_take_slice(8)?.try_into().expect("8 bytes")))
    }

    /// Fallible [`Buf::get_u64_le`] (little-endian).
    fn try_get_u64_le(&mut self) -> Result<u64, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(u64::from_le_bytes(self.try_take_slice(8)?.try_into().expect("8 bytes")))
    }

    /// Fallible [`Buf::get_u128`] (big-endian).
    fn try_get_u128(&mut self) -> Result<u128, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(u128::from_be_bytes(self.try_take_slice(16)?.try_into().expect("16 bytes")))
    }

    /// Fallible [`Buf::get_u128_le`] (little-endian).
    fn try_get_u128_le(&mut self) -> Result<u128, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(u128::from_le_bytes(self.try_take_slice(16)?.try_into().expect("16 bytes")))
    }

    /// Fallible [`Buf::get_i128`] (big-endian).
    fn try_get_i128(&mut self) -> Result<i128, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(i128::from_be_bytes(self.try_take_slice(16)?.try_into().expect("16 bytes")))
    }

    /// Fallible [`Buf::get_i128_le`] (little-endian).
    fn try_get_i128_le(&mut self) -> Result<i128, DecodeError> {
        // lint:allow(no-panic-in-lib): try_take_slice returned exactly the requested length
        Ok(i128::from_le_bytes(self.try_take_slice(16)?.try_into().expect("16 bytes")))
    }

    /// Fallible LEB128 `u64` read, the inverse of
    /// [`BytesMut::put_uvarint`]. Rejects truncated varints, encodings
    /// longer than ten bytes, and final-byte bits that would overflow
    /// `u64` — a byzantine peer cannot make the decoder run off the end
    /// or wrap a length around.
    fn try_get_uvarint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.try_get_u8()?;
            let group = u64::from(byte & 0x7f);
            // The tenth byte (shift 63) may only carry the top bit.
            if shift == 63 && group > 1 {
                return Err(DecodeError::LengthOverflow(u64::MAX));
            }
            v |= group << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(DecodeError::LengthOverflow(u64::MAX))
    }

    /// Fallible zero-copy read of a varint-length-prefixed slice, the
    /// inverse of [`BytesMut::put_varint_slice`]. The declared length
    /// is checked against both `max` and the bytes actually remaining
    /// before anything is sliced.
    fn try_get_varint_slice(&mut self, max: u64) -> Result<&[u8], DecodeError> {
        let n = self.try_get_uvarint()?;
        if n > max {
            return Err(DecodeError::LengthOverflow(n));
        }
        let n = usize::try_from(n).map_err(|_| DecodeError::LengthOverflow(n))?;
        self.try_take_slice(n)
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_slice(1)[0]
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        u64::from_be_bytes(self.take_slice(8).try_into().expect("8 bytes"))
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        u64::from_le_bytes(self.take_slice(8).try_into().expect("8 bytes"))
    }

    /// Reads a big-endian `u128`.
    fn get_u128(&mut self) -> u128 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        u128::from_be_bytes(self.take_slice(16).try_into().expect("16 bytes"))
    }

    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        u128::from_le_bytes(self.take_slice(16).try_into().expect("16 bytes"))
    }

    /// Reads a big-endian `i128`.
    fn get_i128(&mut self) -> i128 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        i128::from_be_bytes(self.take_slice(16).try_into().expect("16 bytes"))
    }

    /// Reads a little-endian `i128`.
    fn get_i128_le(&mut self) -> i128 {
        // lint:allow(no-panic-in-lib): take_slice returned exactly the requested length
        i128::from_le_bytes(self.take_slice(16).try_into().expect("16 bytes"))
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance({n}) past end ({} left)", self.len());
        *self = &self[n..];
    }

    fn take_slice(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "read of {n} bytes with {} left", self.len());
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }

    fn try_take_slice(&mut self, n: usize) -> Result<&[u8], DecodeError> {
        if n > self.len() {
            return Err(DecodeError::Truncated);
        }
        let (head, tail) = self.split_at(n);
        *self = tail;
        Ok(head)
    }
}

/// Decoding failure for [`ByteDecode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the type needs.
    Truncated,
    /// An enum/option discriminant byte was out of range.
    BadTag(u8),
    /// A declared length exceeded the decoder's sanity bound.
    LengthOverflow(u64),
    /// Embedded string bytes were not UTF-8.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
            DecodeError::LengthOverflow(n) => write!(f, "declared length {n} too large"),
            DecodeError::BadUtf8 => write!(f, "string bytes are not UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity bound for declared collection lengths, so corrupt input
/// cannot trigger a giant allocation.
pub const MAX_DECODE_LEN: u64 = 1 << 32;

/// Checked read of `n` bytes, mapping shortfall to an error instead of
/// a panic.
fn need<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if buf.len() < n {
        return Err(DecodeError::Truncated);
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Value → bytes, self-describing enough for [`ByteDecode`] to invert.
pub trait ByteEncode {
    /// Appends this value's encoding to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Convenience: encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.into_vec()
    }
}

/// Bytes → value, the inverse of [`ByteEncode`].
pub trait ByteDecode: Sized {
    /// Decodes one value, advancing `buf` past it.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated, corrupt, or oversized
    /// input.
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError>;

    /// Convenience: decodes a value that must consume all of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] when trailing bytes remain,
    /// plus any error from [`ByteDecode::decode`].
    fn decode_all(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode(&mut bytes)?;
        if bytes.is_empty() {
            Ok(v)
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

macro_rules! impl_codec_int {
    ($($t:ty),*) => {$(
        impl ByteEncode for $t {
            fn encode(&self, buf: &mut BytesMut) {
                buf.put_slice(&self.to_le_bytes());
            }
        }
        impl ByteDecode for $t {
            fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
                let raw = need(buf, std::mem::size_of::<$t>())?;
                // lint:allow(no-panic-in-lib): `need` already guaranteed the exact length
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized read")))
            }
        }
    )*};
}

impl_codec_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

// `usize` travels as `u64` so encodings are identical across word
// sizes.
impl ByteEncode for usize {
    fn encode(&self, buf: &mut BytesMut) {
        (*self as u64).encode(buf);
    }
}

impl ByteDecode for usize {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| DecodeError::LengthOverflow(v))
    }
}

impl ByteEncode for f64 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.to_bits().to_le_bytes());
    }
}

impl ByteDecode for f64 {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::decode(buf)?))
    }
}

impl ByteEncode for f32 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.to_bits().to_le_bytes());
    }
}

impl ByteDecode for f32 {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(f32::from_bits(u32::decode(buf)?))
    }
}

impl ByteEncode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl ByteDecode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl<const N: usize> ByteEncode for [u8; N] {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(self);
    }
}

impl<const N: usize> ByteDecode for [u8; N] {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let raw = need(buf, N)?;
        // lint:allow(no-panic-in-lib): `need` already guaranteed the exact length
        Ok(raw.try_into().expect("sized read"))
    }
}

impl ByteEncode for String {
    fn encode(&self, buf: &mut BytesMut) {
        self.len().encode(buf);
        buf.put_slice(self.as_bytes());
    }
}

impl ByteDecode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = decode_len(buf)?;
        let raw = need(buf, n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: ByteEncode> ByteEncode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        self.len().encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: ByteDecode> ByteDecode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let n = decode_len(buf)?;
        // Guard the preallocation: a corrupt length must not OOM even
        // when each element is tiny.
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(T::decode(buf)?);
        }
        Ok(out)
    }
}

impl<T: ByteEncode> ByteEncode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: ByteDecode> ByteDecode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl<A: ByteEncode, B: ByteEncode> ByteEncode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: ByteDecode, B: ByteDecode> ByteDecode for (A, B) {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

/// Reads a length prefix and bounds it.
fn decode_len(buf: &mut &[u8]) -> Result<usize, DecodeError> {
    let n = u64::decode(buf)?;
    if n > MAX_DECODE_LEN {
        return Err(DecodeError::LengthOverflow(n));
    }
    usize::try_from(n).map_err(|_| DecodeError::LengthOverflow(n))
}

/// Implements [`ByteEncode`] and [`ByteDecode`] for a struct or a
/// fieldless-or-tuple enum by listing its fields — the derive-free
/// replacement for `#[derive(Serialize, Deserialize)]`:
///
/// ```
/// use tradefl_runtime::impl_codec;
/// use tradefl_runtime::codec::{ByteDecode, ByteEncode};
///
/// #[derive(Debug, PartialEq)]
/// struct Quote { price: f64, level: usize, tag: String }
/// impl_codec!(struct Quote { price, level, tag });
///
/// let q = Quote { price: 1.5, level: 2, tag: "ask".into() };
/// let bytes = q.encode_to_vec();
/// assert_eq!(Quote::decode_all(&bytes).unwrap(), q);
/// ```
#[macro_export]
macro_rules! impl_codec {
    (struct $ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::codec::ByteEncode for $ty {
            fn encode(&self, buf: &mut $crate::codec::BytesMut) {
                $($crate::codec::ByteEncode::encode(&self.$field, buf);)*
            }
        }
        impl $crate::codec::ByteDecode for $ty {
            fn decode(
                buf: &mut &[u8],
            ) -> Result<Self, $crate::codec::DecodeError> {
                Ok(Self { $($field: $crate::codec::ByteDecode::decode(buf)?,)* })
            }
        }
    };
    (enum $ty:ty { $($tag:literal => $variant:ident),* $(,)? }) => {
        impl $crate::codec::ByteEncode for $ty {
            fn encode(&self, buf: &mut $crate::codec::BytesMut) {
                match self {
                    $(Self::$variant => buf.put_u8($tag),)*
                }
            }
        }
        impl $crate::codec::ByteDecode for $ty {
            fn decode(
                buf: &mut &[u8],
            ) -> Result<Self, $crate::codec::DecodeError> {
                match $crate::codec::ByteDecode::decode(buf)? {
                    $($tag => Ok(Self::$variant),)*
                    t => Err($crate::codec::DecodeError::BadTag(t)),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesmut_endianness_is_explicit() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u64(1);
        buf.put_u64_le(1);
        assert_eq!(&buf[..8], &[0, 0, 0, 0, 0, 0, 0, 1]);
        assert_eq!(&buf[8..], &[1, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn buf_cursor_advances_in_place() {
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut cur: &[u8] = &bytes;
        assert_eq!(cur.get_u8(), 1);
        assert_eq!(cur.remaining(), 8);
        assert_eq!(cur.get_u64_le(), u64::from_le_bytes([2, 3, 4, 5, 6, 7, 8, 9]));
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn buf_roundtrips_every_width() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u128_le(u128::MAX - 3);
        buf.put_i128_le(-42);
        buf.put_u128(12345);
        buf.put_i128(-12345);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u128_le(), u128::MAX - 3);
        assert_eq!(cur.get_i128_le(), -42);
        assert_eq!(cur.get_u128(), 12345);
        assert_eq!(cur.get_i128(), -12345);
    }

    #[test]
    fn primitives_roundtrip_through_byte_codec() {
        let mut buf = BytesMut::new();
        42u64.encode(&mut buf);
        (-3i128).encode(&mut buf);
        1.5f64.encode(&mut buf);
        true.encode(&mut buf);
        "hello".to_string().encode(&mut buf);
        vec![1u32, 2, 3].encode(&mut buf);
        Some(9usize).encode(&mut buf);
        let mut cur: &[u8] = &buf;
        assert_eq!(u64::decode(&mut cur).unwrap(), 42);
        assert_eq!(i128::decode(&mut cur).unwrap(), -3);
        assert_eq!(f64::decode(&mut cur).unwrap(), 1.5);
        assert!(bool::decode(&mut cur).unwrap());
        assert_eq!(String::decode(&mut cur).unwrap(), "hello");
        assert_eq!(Vec::<u32>::decode(&mut cur).unwrap(), vec![1, 2, 3]);
        assert_eq!(Option::<usize>::decode(&mut cur).unwrap(), Some(9));
        assert!(cur.is_empty());
    }

    #[test]
    fn try_getters_error_on_shortfall_without_moving_the_cursor() {
        let bytes = [1u8, 2, 3];
        let mut cur: &[u8] = &bytes;
        assert_eq!(cur.try_get_u64(), Err(DecodeError::Truncated));
        assert_eq!(cur.try_get_u64_le(), Err(DecodeError::Truncated));
        assert_eq!(cur.try_get_u128(), Err(DecodeError::Truncated));
        assert_eq!(cur.try_get_i128_le(), Err(DecodeError::Truncated));
        assert_eq!(cur.try_advance(4), Err(DecodeError::Truncated));
        assert_eq!(cur.remaining(), 3, "failed reads must not consume bytes");
        assert_eq!(cur.try_get_u8(), Ok(1));
        assert_eq!(cur.try_take_slice(2), Ok(&[2u8, 3][..]));
        assert_eq!(cur.try_get_u8(), Err(DecodeError::Truncated));
    }

    #[test]
    fn try_getters_match_panicking_getters_on_valid_input() {
        let mut buf = BytesMut::new();
        buf.put_u8(9);
        buf.put_u64(77);
        buf.put_u64_le(78);
        buf.put_u128(1 << 100);
        buf.put_u128_le(2 << 100);
        buf.put_i128(-5);
        buf.put_i128_le(-6);
        let mut a: &[u8] = &buf;
        let mut b: &[u8] = &buf;
        assert_eq!(a.try_get_u8().unwrap(), b.get_u8());
        assert_eq!(a.try_get_u64().unwrap(), b.get_u64());
        assert_eq!(a.try_get_u64_le().unwrap(), b.get_u64_le());
        assert_eq!(a.try_get_u128().unwrap(), b.get_u128());
        assert_eq!(a.try_get_u128_le().unwrap(), b.get_u128_le());
        assert_eq!(a.try_get_i128().unwrap(), b.get_i128());
        assert_eq!(a.try_get_i128_le().unwrap(), b.get_i128_le());
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let bytes = 42u64.encode_to_vec();
        let mut cur: &[u8] = &bytes[..5];
        assert_eq!(u64::decode(&mut cur), Err(DecodeError::Truncated));
        assert_eq!(u64::decode_all(&bytes[..5]), Err(DecodeError::Truncated));
    }

    #[test]
    fn corrupt_length_is_bounded() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(u64::MAX); // absurd Vec length prefix
        let mut cur: &[u8] = &buf;
        assert!(matches!(
            Vec::<u8>::decode(&mut cur),
            Err(DecodeError::LengthOverflow(_))
        ));
    }

    #[test]
    fn uvarint_roundtrips_and_width_scales() {
        for (v, width) in [
            (0u64, 1usize),
            (1, 1),
            (127, 1),
            (128, 2),
            (16383, 2),
            (16384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ] {
            let mut buf = BytesMut::new();
            buf.put_uvarint(v);
            assert_eq!(buf.len(), width, "width of {v}");
            let mut cur: &[u8] = &buf;
            assert_eq!(cur.try_get_uvarint(), Ok(v));
            assert_eq!(cur.remaining(), 0);
        }
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        // Continuation bit set on the last available byte.
        let mut cur: &[u8] = &[0x80, 0x80];
        assert_eq!(cur.try_get_uvarint(), Err(DecodeError::Truncated));
        // Ten continuation bytes: no terminator within the u64 range.
        let eleven = [0x80u8; 11];
        let mut cur: &[u8] = &eleven;
        assert!(matches!(cur.try_get_uvarint(), Err(DecodeError::LengthOverflow(_))));
        // Tenth byte carries bits beyond 2^64.
        let mut wide = [0x80u8; 10];
        wide[9] = 0x02;
        let mut cur: &[u8] = &wide;
        assert!(matches!(cur.try_get_uvarint(), Err(DecodeError::LengthOverflow(_))));
    }

    #[test]
    fn varint_slice_is_zero_copy_and_bounded() {
        let mut buf = BytesMut::new();
        buf.put_varint_slice(b"settlement");
        let mut cur: &[u8] = &buf;
        let got = cur.try_get_varint_slice(1 << 20).unwrap();
        assert_eq!(got, b"settlement");
        // Zero-copy: the returned slice aliases the input buffer.
        assert_eq!(got.as_ptr(), buf[1..].as_ptr());
        assert_eq!(cur.remaining(), 0);
        // A declared length beyond `max` is rejected before slicing.
        let mut cur: &[u8] = &buf;
        assert!(matches!(
            cur.try_get_varint_slice(3),
            Err(DecodeError::LengthOverflow(10))
        ));
        // A declared length beyond the remaining bytes is truncation.
        let mut short: &[u8] = &buf[..4];
        assert_eq!(short.try_get_varint_slice(1 << 20), Err(DecodeError::Truncated));
    }

    #[derive(Debug, PartialEq)]
    struct Pair {
        a: u64,
        b: Vec<f64>,
    }
    impl_codec!(struct Pair { a, b });

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    impl_codec!(enum Mode { 0 => Fast, 1 => Slow });

    #[test]
    fn macro_codec_roundtrips() {
        let p = Pair { a: 9, b: vec![1.0, -2.5] };
        assert_eq!(Pair::decode_all(&p.encode_to_vec()).unwrap(), p);
        assert_eq!(Mode::decode_all(&Mode::Slow.encode_to_vec()).unwrap(), Mode::Slow);
        assert_eq!(Mode::decode_all(&[7]), Err(DecodeError::BadTag(7)));
    }
}
