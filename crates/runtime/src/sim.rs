//! Deterministic simulation substrate: simulated time, a totally
//! ordered event queue, bounded (backpressure) queues, and stateless
//! Poisson arrival streams.
//!
//! This module is the foundation of the `tradefl-engine` event-loop
//! executor and its deterministic-simulation-testing (DST) harness.
//! The design constraints are the workspace's usual ones, sharpened by
//! the need to *checkpoint and resume* a live simulation:
//!
//! * **No wall clock.** Time is a logical tick counter ([`SimTime`]),
//!   exactly like the per-subsystem logical clocks in [`crate::obs`];
//!   the `no-wallclock` lint holds by construction.
//! * **Total event order.** Every scheduled event is keyed by
//!   `(time, tiebreak, seq)` where `seq` is a monotone insertion
//!   counter and `tiebreak` is a seeded hash of `seq` — simultaneous
//!   events fire in a pseudo-random but fully reproducible order that
//!   does not silently encode insertion order (see
//!   [`EventQueue::push`]).
//! * **Stateless randomness.** Every stochastic draw (tiebreaks,
//!   arrival gaps, fault decisions in [`faults`]) is a pure function
//!   of `(seed, counter)`. A checkpoint therefore only needs to record
//!   a handful of counters to resume *bit-identically* — no generator
//!   state ever needs serializing.

use crate::rng::{Rng, SeedableRng, StdRng};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

pub mod faults;

/// Simulated time in logical ticks. Starts at 0; only event delivery
/// advances it.
pub type SimTime = u64;

/// SplitMix64 finalizer — the workspace's standard stateless mixer.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent substream seed from a root seed and a stream
/// label (used by the engine to give arrivals, faults, and tiebreaks
/// decorrelated randomness from one user-facing seed).
pub fn substream(seed: u64, label: u64) -> u64 {
    mix(seed ^ mix(label).rotate_left(17))
}

/// One queued event with its total-order key.
#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    tiebreak: u64,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> (SimTime, u64, u64) {
        (self.time, self.tiebreak, self.seq)
    }
}

// Orderings compare keys only (events carry no order); reversed so the
// std max-heap pops the *smallest* key first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// A totally ordered, seeded event queue over simulated time.
///
/// Events scheduled for the same tick fire in an order decided by a
/// seeded tiebreak (not insertion order), so two code paths that
/// happen to schedule in a different sequence still produce the same
/// executions for the same seed — and DST runs explore *different*
/// same-tick interleavings under different seeds.
///
/// ```
/// use tradefl_runtime::sim::EventQueue;
///
/// let mut q = EventQueue::new(42);
/// q.push(5, "b");
/// q.push(3, "a");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (3, "a"));
/// assert_eq!(q.now(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    seed: u64,
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
}

impl<E> EventQueue<E> {
    /// An empty queue at time 0. `seed` drives same-tick tie-breaking.
    pub fn new(seed: u64) -> Self {
        Self { seed, now: 0, seq: 0, heap: BinaryHeap::new() }
    }

    /// Current simulated time (the timestamp of the last popped
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time` (clamped to `now`:
    /// the past is not addressable). Returns the entry's sequence
    /// number.
    pub fn push(&mut self, time: SimTime, event: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let tiebreak = mix(self.seed ^ seq);
        self.heap.push(Entry { time: time.max(self.now), tiebreak, seq, event });
        seq
    }

    /// Schedules `event` `dt` ticks from now.
    pub fn push_in(&mut self, dt: SimTime, event: E) -> u64 {
        self.push(self.now.saturating_add(dt), event)
    }

    /// Pops the next event in `(time, tiebreak, seq)` order, advancing
    /// the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The next sequence number (monotone event counter) — part of a
    /// checkpoint, restored via [`EventQueue::restore`].
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// Pending entries as `(time, tiebreak, seq, event)` in canonical
    /// (firing) order — the checkpointable view of the queue.
    pub fn pending(&self) -> Vec<(SimTime, u64, u64, &E)> {
        let mut entries: Vec<_> = self
            .heap
            .iter()
            .map(|e| (e.time, e.tiebreak, e.seq, &e.event))
            .collect();
        entries.sort_by_key(|&(t, tb, s, _)| (t, tb, s));
        entries
    }

    /// Rebuilds a queue from checkpointed state: clock, next sequence
    /// number, and the pending entries exactly as [`EventQueue::pending`]
    /// reported them (tiebreaks are re-derived; they are a pure
    /// function of `seed ^ seq`).
    pub fn restore(
        seed: u64,
        now: SimTime,
        next_seq: u64,
        entries: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) -> Self {
        let mut q = Self { seed, now, seq: next_seq, heap: BinaryHeap::new() };
        for (time, seq, event) in entries {
            let tiebreak = mix(seed ^ seq);
            q.heap.push(Entry { time, tiebreak, seq, event });
        }
        q
    }
}

/// A bounded FIFO queue — the backpressure primitive.
///
/// `push` refuses (returning the item) rather than grow past the
/// capacity; callers decide whether to retry later, shed load, or
/// count a deferral.
#[derive(Debug, Clone)]
pub struct Bounded<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// An empty queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self { items: VecDeque::new(), capacity: capacity.max(1) }
    }

    /// The capacity limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Enqueues `item`, or returns it when the queue is full.
    ///
    /// # Errors
    ///
    /// `Err(item)` when at capacity — the caller keeps ownership and
    /// decides how to apply backpressure.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.is_full() {
            return Err(item);
        }
        self.items.push_back(item);
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Iterates oldest-first (checkpointing).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// A stateless Poisson (exponential inter-arrival) stream.
///
/// The gap before arrival `k` is a pure function of
/// `(seed, stream, k)`: open-loop generators can be resumed from a
/// checkpoint by remembering only `k`.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    seed: u64,
    stream: u64,
    mean: f64,
}

impl Poisson {
    /// A stream with the given mean inter-arrival time in ticks
    /// (clamped to ≥ 1).
    pub fn new(seed: u64, stream: u64, mean_ticks: f64) -> Self {
        Self { seed, stream, mean: mean_ticks.max(1.0) }
    }

    /// The inter-arrival gap before arrival `k` (≥ 1 tick).
    pub fn gap(&self, k: u64) -> SimTime {
        let mut rng = StdRng::seed_from_u64(substream(self.seed, self.stream) ^ mix(k));
        // Inverse-CDF exponential; (1 - u) keeps ln away from 0.
        let u = rng.gen_f64();
        let gap = -(1.0 - u).max(f64::EPSILON).ln() * self.mean;
        (gap.ceil() as u64).clamp(1, u64::MAX / 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new(1);
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn same_tick_order_is_seeded_and_reproducible() {
        let run = |seed| {
            let mut q = EventQueue::new(seed);
            for label in 0..8 {
                q.push(5, label);
            }
            std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect::<Vec<i32>>()
        };
        assert_eq!(run(7), run(7), "same seed, same interleaving");
        assert_ne!(run(7), run(8), "different seeds explore different interleavings");
    }

    #[test]
    fn push_clamps_to_now() {
        let mut q = EventQueue::new(0);
        q.push(10, "late");
        q.pop();
        q.push(3, "would-be-past");
        assert_eq!(q.pop(), Some((10, "would-be-past")));
    }

    #[test]
    fn pending_and_restore_round_trip() {
        let mut q = EventQueue::new(99);
        q.push(4, "x");
        q.push(2, "y");
        q.push(4, "z");
        q.pop();
        let pending: Vec<(SimTime, u64, String)> =
            q.pending().into_iter().map(|(t, _, s, e)| (t, s, e.to_string())).collect();
        let mut restored = EventQueue::restore(
            99,
            q.now(),
            q.next_seq(),
            pending.into_iter().map(|(t, s, e)| (t, s, e)),
        );
        let rest_a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let rest_b: Vec<_> =
            std::iter::from_fn(|| restored.pop()).map(|(t, e)| (t, e.to_string())).collect();
        let rest_a: Vec<_> = rest_a.into_iter().map(|(t, e)| (t, e.to_string())).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        let mut q = Bounded::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3), "full queue hands the item back");
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn poisson_gaps_are_stateless_and_positive() {
        let p = Poisson::new(11, 3, 40.0);
        for k in 0..200 {
            assert!(p.gap(k) >= 1);
            assert_eq!(p.gap(k), p.gap(k), "pure function of (seed, stream, k)");
        }
        // Mean roughly matches the requested rate (loose sanity band).
        let mean = (0..2000).map(|k| p.gap(k) as f64).sum::<f64>() / 2000.0;
        assert!((20.0..80.0).contains(&mean), "mean gap {mean}");
    }

    #[test]
    fn substreams_decorrelate() {
        assert_ne!(substream(1, 0), substream(1, 1));
        assert_ne!(substream(1, 0), substream(2, 0));
    }
}
