//! Seeded fault injection for the wire path of a simulated network.
//!
//! A [`FaultPlan`] decides, per broadcast frame and per receiving
//! peer, whether the frame is dropped, duplicated, delayed (which
//! reorders it against other in-flight frames), truncated, or
//! corrupted — plus a schedule of node crashes with restarts. Every
//! decision is a pure function of `(seed, decision counter)`, so a
//! checkpoint only records the counter and a resumed run makes the
//! identical decisions ([`FaultPlan::decisions`] /
//! [`FaultPlan::restore_decisions`]).
//!
//! The plan mutates *bytes*, not structures: injected faults exercise
//! the same untrusted-decode path
//! (`tradefl_ledger::network::Network::deliver_frame`) a byzantine
//! peer would.

use super::{substream, SimTime};
use crate::rng::{Rng, SeedableRng, StdRng};

/// Probabilities and crash schedule for one simulated run.
///
/// All probabilities are clamped to `[0, 1]` when the plan is built.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a frame is silently dropped.
    pub drop_p: f64,
    /// Probability a delivered frame is delivered twice.
    pub dup_p: f64,
    /// Probability a delivery is delayed (reordering it against other
    /// frames in flight).
    pub delay_p: f64,
    /// Maximum extra delay in ticks (uniform in `1..=max_delay`).
    pub max_delay: SimTime,
    /// Probability a frame is truncated at a random cut.
    pub truncate_p: f64,
    /// Probability one byte of the frame is flipped.
    pub corrupt_p: f64,
    /// Kill-and-restart schedule: `(node, crash_at, down_for)`.
    pub crashes: Vec<CrashPlan>,
}

/// One scheduled kill-and-restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Index of the node to kill.
    pub node: usize,
    /// Tick at which the node dies.
    pub at: SimTime,
    /// Ticks until it restarts (recovery replays from the ledger).
    /// [`CrashPlan::NEVER_RESTARTS`] means the node stays dead for the
    /// rest of the run.
    pub down_for: SimTime,
}

impl CrashPlan {
    /// Sentinel `down_for`: the crash is permanent — no restart event
    /// is ever scheduled for this node.
    pub const NEVER_RESTARTS: SimTime = SimTime::MAX;

    /// Whether this crash schedules a restart at all.
    pub fn restarts(&self) -> bool {
        self.down_for != Self::NEVER_RESTARTS
    }
}

impl FaultConfig {
    /// A fault-free configuration (the engine's default).
    pub fn none() -> Self {
        Self {
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            max_delay: 0,
            truncate_p: 0.0,
            corrupt_p: 0.0,
            crashes: Vec::new(),
        }
    }

    /// Derives a randomized fault schedule from a seed: moderate
    /// drop/dup/delay/truncate/corrupt rates plus up to one
    /// kill-and-restart per node, all inside `[horizon/8, horizon/2]`
    /// with the node back up well before `horizon` so end-of-run
    /// convergence is assertable over every node.
    pub fn from_seed(seed: u64, nodes: usize, horizon: SimTime) -> Self {
        let mut rng = StdRng::seed_from_u64(substream(seed, 0xFA01));
        let horizon = horizon.max(16);
        let mut crashes = Vec::new();
        for node in 0..nodes {
            if rng.gen_bool(0.4) {
                let at = rng.gen_range(horizon / 8..horizon / 2);
                let down_for = rng.gen_range(horizon / 16..horizon / 4).max(1);
                crashes.push(CrashPlan { node, at, down_for });
            }
        }
        Self {
            drop_p: rng.gen_range(0.0..0.25),
            dup_p: rng.gen_range(0.0..0.25),
            delay_p: rng.gen_range(0.0..0.4),
            max_delay: rng.gen_range(1..horizon / 4),
            truncate_p: rng.gen_range(0.0..0.2),
            corrupt_p: rng.gen_range(0.0..0.2),
            crashes,
        }
    }
}

/// One copy of a frame the plan decided to deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Extra delay before the frame arrives.
    pub delay: SimTime,
    /// The (possibly mutated) frame bytes.
    pub frame: Vec<u8>,
    /// Whether the bytes differ from the original (the receiver is
    /// expected to reject them at decode or validation).
    pub mutated: bool,
}

/// A seeded per-run fault decision stream.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    decisions: u64,
}

impl FaultPlan {
    /// A plan over `config`, with decisions derived from `seed`.
    pub fn new(seed: u64, mut config: FaultConfig) -> Self {
        for p in [
            &mut config.drop_p,
            &mut config.dup_p,
            &mut config.delay_p,
            &mut config.truncate_p,
            &mut config.corrupt_p,
        ] {
            *p = p.clamp(0.0, 1.0);
        }
        Self { seed, config, decisions: 0 }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decisions made so far (part of a checkpoint).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Restores the decision counter from a checkpoint.
    pub fn restore_decisions(&mut self, decisions: u64) {
        self.decisions = decisions;
    }

    /// Decides the fate of one frame sent to one peer: zero (dropped),
    /// one, or two (duplicated) deliveries, each possibly delayed,
    /// truncated, or corrupted.
    pub fn route(&mut self, frame: &[u8]) -> Vec<Delivery> {
        let mut rng =
            StdRng::seed_from_u64(substream(self.seed, 0xFA02) ^ super::mix(self.decisions));
        self.decisions += 1;
        let c = &self.config;
        if rng.gen_bool(c.drop_p) {
            return Vec::new();
        }
        let copies = if rng.gen_bool(c.dup_p) { 2 } else { 1 };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let delay = if c.max_delay > 0 && rng.gen_bool(c.delay_p) {
                rng.gen_range(1..=c.max_delay)
            } else {
                0
            };
            let mut bytes = frame.to_vec();
            let mut mutated = false;
            if !bytes.is_empty() && rng.gen_bool(c.truncate_p) {
                bytes.truncate(rng.gen_range(0..bytes.len()));
                mutated = true;
            } else if !bytes.is_empty() && rng.gen_bool(c.corrupt_p) {
                let pos = rng.gen_range(0..bytes.len());
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 1 << rng.gen_range(0u32..8);
                }
                mutated = true;
            }
            out.push(Delivery { delay, frame: bytes, mutated });
        }
        out
    }
}

/// Probability that a scheduled proposer lies about its block.
///
/// Unlike [`FaultConfig`], which mutates *bytes on the wire*, a
/// Byzantine proposer mutates the *block itself* before it leaves the
/// node: the lie is internally consistent bytes that only full
/// re-execution can refute. The driver (the engine's batch loop) asks
/// [`ByzantinePlan::decide`] once per block-production attempt and, on
/// `Some`, applies the returned [`Tamper`] to the proposed block.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineConfig {
    /// Probability a given block-production attempt is tampered.
    pub tamper_p: f64,
}

impl ByzantineConfig {
    /// No Byzantine proposers (the engine's default).
    pub fn none() -> Self {
        Self { tamper_p: 0.0 }
    }

    /// Derives a moderate tamper rate from a seed — low enough that an
    /// honest proposer is always found within a few election terms,
    /// high enough that multi-block runs see at least one lie.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(substream(seed, 0xFA04));
        Self { tamper_p: rng.gen_range(0.05..0.35) }
    }
}

/// Which part of the block a Byzantine proposer lies about.
///
/// The variants mirror the distinct rejection paths in block
/// validation: a forged post-state commitment, a forged receipts
/// commitment in the header, and forged receipt contents (which the
/// header then honestly commits to — caught only by re-execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperKind {
    /// Flip bits of `header.state_root` (claims a different post-state).
    StateRoot,
    /// Flip bits of `header.receipts_root` (header lies about receipts).
    ReceiptsRoot,
    /// Inflate a receipt's `gas_used` (receipts lie; header commits to
    /// the lie, so only re-execution catches it).
    ReceiptGas,
}

/// One scheduled lie: what to mutate and a nonzero salt deciding which
/// bits to flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tamper {
    /// The field family to mutate.
    pub kind: TamperKind,
    /// Nonzero mutation salt (position / xor material).
    pub salt: u64,
}

/// A seeded per-run Byzantine-proposer decision stream.
///
/// Every decision is a pure function of `(seed, decision counter)` —
/// the same checkpoint contract as [`FaultPlan`]: serialize
/// [`ByzantinePlan::decisions`], restore it with
/// [`ByzantinePlan::restore_decisions`], and a resumed run schedules
/// the identical lies.
#[derive(Debug, Clone)]
pub struct ByzantinePlan {
    seed: u64,
    config: ByzantineConfig,
    decisions: u64,
}

impl ByzantinePlan {
    /// A plan over `config`, with decisions derived from `seed`.
    pub fn new(seed: u64, mut config: ByzantineConfig) -> Self {
        config.tamper_p = config.tamper_p.clamp(0.0, 1.0);
        Self { seed, config, decisions: 0 }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ByzantineConfig {
        &self.config
    }

    /// Decisions made so far (part of a checkpoint).
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Restores the decision counter from a checkpoint.
    pub fn restore_decisions(&mut self, decisions: u64) {
        self.decisions = decisions;
    }

    /// Decides whether the next block-production attempt lies, and how.
    pub fn decide(&mut self) -> Option<Tamper> {
        let mut rng =
            StdRng::seed_from_u64(substream(self.seed, 0xFA03) ^ super::mix(self.decisions));
        self.decisions += 1;
        if !rng.gen_bool(self.config.tamper_p) {
            return None;
        }
        let kind = match rng.gen_range(0u32..3) {
            0 => TamperKind::StateRoot,
            1 => TamperKind::ReceiptsRoot,
            _ => TamperKind::ReceiptGas,
        };
        Some(Tamper { kind, salt: rng.next_u64() | 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> FaultConfig {
        FaultConfig {
            drop_p: 0.3,
            dup_p: 0.3,
            delay_p: 0.5,
            max_delay: 10,
            truncate_p: 0.3,
            corrupt_p: 0.3,
            crashes: vec![],
        }
    }

    #[test]
    fn decision_streams_are_reproducible() {
        let frame = vec![7u8; 64];
        let run = || {
            let mut plan = FaultPlan::new(5, lossy());
            (0..100).flat_map(|_| plan.route(&frame)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn restored_counter_resumes_the_same_stream() {
        let frame = vec![0u8; 32];
        let mut a = FaultPlan::new(9, lossy());
        let mut whole = Vec::new();
        for _ in 0..50 {
            whole.push(a.route(&frame));
        }
        let mut b = FaultPlan::new(9, lossy());
        for _ in 0..20 {
            b.route(&frame);
        }
        let mut c = FaultPlan::new(9, lossy());
        c.restore_decisions(b.decisions());
        for item in whole.iter().skip(20) {
            assert_eq!(&c.route(&frame), item);
        }
    }

    #[test]
    fn fault_free_plan_passes_frames_through_untouched() {
        let frame: Vec<u8> = (0..200).map(|i| i as u8).collect();
        let mut plan = FaultPlan::new(1, FaultConfig::none());
        for _ in 0..50 {
            let out = plan.route(&frame);
            assert_eq!(out.len(), 1);
            assert_eq!(out[0], Delivery { delay: 0, frame: frame.clone(), mutated: false });
        }
    }

    #[test]
    fn lossy_plan_exercises_every_fault_kind() {
        let frame = vec![0xAB; 100];
        let mut plan = FaultPlan::new(77, lossy());
        let (mut drops, mut dups, mut delays, mut mutations) = (0, 0, 0, 0);
        for _ in 0..500 {
            let out = plan.route(&frame);
            match out.len() {
                0 => drops += 1,
                2 => dups += 1,
                _ => {}
            }
            delays += out.iter().filter(|d| d.delay > 0).count();
            mutations += out.iter().filter(|d| d.mutated).count();
        }
        assert!(drops > 0, "no drops in 500 routes");
        assert!(dups > 0, "no duplicates in 500 routes");
        assert!(delays > 0, "no delays in 500 routes");
        assert!(mutations > 0, "no mutations in 500 routes");
    }

    #[test]
    fn seeded_schedules_keep_crashed_nodes_recoverable() {
        for seed in 0..50 {
            let c = FaultConfig::from_seed(seed, 4, 1000);
            for crash in &c.crashes {
                assert!(crash.node < 4);
                assert!(crash.at + crash.down_for < 1000, "restart lands before the horizon");
                assert!(crash.down_for >= 1);
            }
        }
    }

    #[test]
    fn empty_frames_route_without_panicking() {
        let mut plan = FaultPlan::new(3, lossy());
        for _ in 0..100 {
            for d in plan.route(&[]) {
                assert!(d.frame.is_empty());
            }
        }
    }

    #[test]
    fn byzantine_decisions_are_reproducible_and_resume_from_a_counter() {
        let run = || {
            let mut plan = ByzantinePlan::new(11, ByzantineConfig { tamper_p: 0.5 });
            (0..100).map(|_| plan.decide()).collect::<Vec<_>>()
        };
        let whole = run();
        assert_eq!(whole, run());
        let mut resumed = ByzantinePlan::new(11, ByzantineConfig { tamper_p: 0.5 });
        resumed.restore_decisions(40);
        for item in whole.iter().skip(40) {
            assert_eq!(&resumed.decide(), item);
        }
    }

    #[test]
    fn byzantine_plans_cover_every_tamper_kind_with_nonzero_salts() {
        let mut plan = ByzantinePlan::new(3, ByzantineConfig { tamper_p: 0.9 });
        let (mut roots, mut receipts_roots, mut gas, mut honest) = (0, 0, 0, 0);
        for _ in 0..500 {
            match plan.decide() {
                Some(t) => {
                    assert_ne!(t.salt, 0, "salts must be nonzero to guarantee a mutation");
                    match t.kind {
                        TamperKind::StateRoot => roots += 1,
                        TamperKind::ReceiptsRoot => receipts_roots += 1,
                        TamperKind::ReceiptGas => gas += 1,
                    }
                }
                None => honest += 1,
            }
        }
        assert!(roots > 0 && receipts_roots > 0 && gas > 0, "{roots}/{receipts_roots}/{gas}");
        assert!(honest > 0, "p = 0.9 still leaves honest rounds");
    }

    #[test]
    fn byzantine_none_never_tampers_and_seeded_rates_stay_moderate() {
        let mut plan = ByzantinePlan::new(9, ByzantineConfig::none());
        assert!((0..200).all(|_| plan.decide().is_none()));
        for seed in 0..50 {
            let c = ByzantineConfig::from_seed(seed);
            assert!((0.05..0.35).contains(&c.tamper_p), "seed {seed}: {}", c.tamper_p);
        }
    }

    #[test]
    fn permanent_crashes_are_distinguishable() {
        let permanent =
            CrashPlan { node: 0, at: 10, down_for: CrashPlan::NEVER_RESTARTS };
        let transient = CrashPlan { node: 0, at: 10, down_for: 50 };
        assert!(!permanent.restarts());
        assert!(transient.restarts());
    }
}
