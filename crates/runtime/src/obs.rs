//! Zero-dependency observability: logical-clock events, counters,
//! gauges, and fixed-bucket histograms with a JSONL exporter.
//!
//! The workspace's determinism contract (DESIGN.md §6) forbids wall
//! clocks and scheduler-order dependence in replayable code, which
//! rules out every off-the-shelf tracing stack. This module records
//! telemetry **without breaking either invariant**:
//!
//! * **Events** are keyed by a *logical clock* — a monotonic step
//!   counter per [`Subsystem`], never wall time. Instrumentation sites
//!   only emit events from *sequential orchestration code* (a solver's
//!   iteration loop, FedAvg's round loop, a node's mining step), so
//!   the event stream is bit-identical for every worker count and the
//!   determinism suite can diff it directly.
//! * **Counters / gauges / histograms** are order-independent
//!   aggregates (sums, last-write, bucket tallies). They *may* be
//!   bumped from pool workers — totals are stable, per-worker
//!   attribution (e.g. tasks stolen) is inherently scheduling-
//!   dependent and therefore excluded from determinism comparisons.
//! * The optional **duration sink** ([`time_scope`]) is the one place
//!   that reads the wall clock. It is double-opt-in (recorder enabled
//!   *and* [`enable_durations`]), carries an in-place
//!   `lint:allow(no-wallclock)`, and its output lands in histograms,
//!   never in the event stream.
//!
//! **Disabled-path cost.** The recorder is off by default. Every entry
//! point begins with one relaxed atomic load and returns immediately;
//! no allocation, no locking, no formatting happens until [`enable`]
//! is called. Field values are `Copy` (`&'static str` for strings), so
//! even *building the call arguments* allocates nothing.
//!
//! **Export.** [`export_jsonl`] renders the whole recording as JSON
//! Lines (schema `tradefl-trace/v1`): a `meta` line, every event in
//! logical-clock order, then counters/gauges/histograms in
//! `BTreeMap` (byte-wise name) order — a deterministic byte stream for
//! a deterministic run.
//!
//! ```
//! use tradefl_runtime::obs::{self, Subsystem};
//!
//! let (sum, snap) = obs::with_local(|| {
//!     obs::event(Subsystem::Cgbd, "iteration", &[("k", 1u64.into())]);
//!     obs::counter_add("cgbd.cuts_added", 1);
//!     2 + 2
//! });
//! assert_eq!(sum, 4);
//! assert_eq!(snap.events.len(), 1);
//! assert_eq!(snap.counters["cgbd.cuts_added"], 1);
//! ```

use crate::sync::Mutex;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Schema identifier written on the first line of every JSONL export.
pub const TRACE_SCHEMA: &str = "tradefl-trace/v1";

/// Cap on buffered events; beyond it events are counted as dropped
/// instead of growing the buffer without bound (a long-running process
/// with the recorder left on must not OOM).
pub const MAX_EVENTS: usize = 1 << 20;

/// The subsystems that carry a logical clock. Each has an independent
/// monotonic step counter starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Subsystem {
    /// CGBD solver iterations (Algorithm 1).
    Cgbd,
    /// DBR best-response rounds (Algorithm 2).
    Dbr,
    /// Interior-point primal solves.
    Primal,
    /// FedAvg training rounds.
    Fed,
    /// Work-stealing pool scopes.
    Pool,
    /// Ledger block production / application.
    Ledger,
    /// Market-engine event loop (sessions, batches, recoveries).
    Engine,
}

impl Subsystem {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Subsystem::Cgbd => "cgbd",
            Subsystem::Dbr => "dbr",
            Subsystem::Primal => "primal",
            Subsystem::Fed => "fed",
            Subsystem::Pool => "pool",
            Subsystem::Ledger => "ledger",
            Subsystem::Engine => "engine",
        }
    }

    const COUNT: usize = 7;

    fn index(self) -> usize {
        match self {
            Subsystem::Cgbd => 0,
            Subsystem::Dbr => 1,
            Subsystem::Primal => 2,
            Subsystem::Fed => 3,
            Subsystem::Pool => 4,
            Subsystem::Ledger => 5,
            Subsystem::Engine => 6,
        }
    }
}

/// A field value attached to an event. All variants are `Copy` so call
/// sites allocate nothing even while the recorder is enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (exported via Rust's shortest-round-trip
    /// formatting, so export bytes are deterministic).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string.
    Str(&'static str),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        FieldValue::Str(v)
    }
}

/// One recorded event: a named step on a subsystem's logical clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Which subsystem's clock stamped this event.
    pub subsystem: Subsystem,
    /// The logical-clock value (0-based, monotonic per subsystem).
    pub seq: u64,
    /// Event name, e.g. `"iteration"`.
    pub name: &'static str,
    /// Named payload fields in call-site order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// A fixed-layout histogram: base-2 exponential buckets over `|v|`,
/// plus count/sum/min/max. The layout is identical for every
/// histogram, so exports are comparable across runs and names.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// `buckets[i]` counts values `v` with
    /// `2^(i + BUCKET_MIN_EXP - 1) < |v| <= 2^(i + BUCKET_MIN_EXP)`;
    /// bucket 0 additionally absorbs everything at or below the floor
    /// (including 0), the last bucket everything above the ceiling.
    pub buckets: [u64; Histogram::BUCKETS],
}

impl Histogram {
    /// Number of buckets in the fixed layout.
    pub const BUCKETS: usize = 40;
    /// Exponent of the first bucket's upper bound: bucket 0 holds
    /// `|v| <= 2^BUCKET_MIN_EXP`.
    pub const BUCKET_MIN_EXP: i32 = -20;

    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; Self::BUCKETS],
        }
    }

    /// Index of the bucket a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        let mag = v.abs();
        if !mag.is_finite() {
            return Self::BUCKETS - 1;
        }
        // lint:allow(no-float-eq): exact-zero test — log2(0) is -inf, and ±0.0 both belong in bucket 0
        if mag == 0.0 {
            return 0;
        }
        // ceil(log2(mag)) without libm edge cases: exponent of the
        // smallest power of two >= mag.
        let exp = mag.log2().ceil() as i32;
        let idx = exp - Self::BUCKET_MIN_EXP;
        idx.clamp(0, Self::BUCKETS as i32 - 1) as usize
    }

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_index(v)] += 1;
    }
}

/// Everything a recorder holds, cloned out by [`snapshot`].
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Events in logical-clock emission order.
    pub events: Vec<Event>,
    /// Events not buffered because [`MAX_EVENTS`] was hit.
    pub events_dropped: u64,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// An independent recorder. Most code uses the process-global one via
/// the free functions; tests install their own with [`with_local`] so
/// concurrent tests cannot pollute each other's streams.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<EventBuf>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

#[derive(Debug, Default)]
struct EventBuf {
    clocks: [u64; Subsystem::COUNT],
    records: Vec<Event>,
    dropped: u64,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    fn event(&self, subsystem: Subsystem, name: &'static str, fields: &[(&'static str, FieldValue)]) {
        let mut buf = self.events.lock();
        let seq = buf.clocks[subsystem.index()];
        buf.clocks[subsystem.index()] += 1;
        if buf.records.len() >= MAX_EVENTS {
            buf.dropped += 1;
            return;
        }
        buf.records.push(Event { subsystem, seq, name, fields: fields.to_vec() });
    }

    fn counter_add(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock();
        match counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    fn gauge_set(&self, name: &str, v: f64) {
        let mut gauges = self.gauges.lock();
        match gauges.get_mut(name) {
            Some(g) => *g = v,
            None => {
                gauges.insert(name.to_string(), v);
            }
        }
    }

    fn hist_record(&self, name: &str, v: f64) {
        let mut hists = self.histograms.lock();
        match hists.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                hists.insert(name.to_string(), h);
            }
        }
    }

    fn snapshot(&self) -> Snapshot {
        let buf = self.events.lock();
        let events = buf.records.clone();
        let events_dropped = buf.dropped;
        drop(buf);
        Snapshot {
            events,
            events_dropped,
            counters: self.counters.lock().clone(),
            gauges: self.gauges.lock().clone(),
            histograms: self.histograms.lock().clone(),
        }
    }

    fn reset(&self) {
        *self.events.lock() = EventBuf::default();
        self.counters.lock().clear();
        self.gauges.lock().clear();
        self.histograms.lock().clear();
    }
}

/// Master switch. Off ⇒ every entry point is a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Second switch for the wall-clock duration sink ([`time_scope`]).
static DURATIONS: AtomicBool = AtomicBool::new(false);

fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

thread_local! {
    /// Test-scoped override: when set, this thread's recordings go to
    /// the local recorder instead of the global one, so concurrently
    /// running tests cannot interleave their streams.
    static LOCAL: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
}

fn with_active<R>(f: impl FnOnce(&Recorder) -> R) -> R {
    LOCAL.with(|local| match local.borrow().as_ref() {
        Some(rec) => f(rec),
        None => f(global()),
    })
}

/// Turns recording on (process-wide).
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded data is kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is on. This is the disabled path's entire cost.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Opts in to the wall-clock duration sink (see [`time_scope`]).
/// Durations land in histograms only, never in the event stream, so
/// determinism comparisons are unaffected.
pub fn enable_durations() {
    DURATIONS.store(true, Ordering::Relaxed);
}

/// Records an event on `subsystem`'s logical clock. No-op when
/// disabled.
#[inline]
pub fn event(subsystem: Subsystem, name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !is_enabled() {
        return;
    }
    with_active(|rec| rec.event(subsystem, name, fields));
}

/// Adds `n` to the named counter. No-op when disabled.
#[inline]
pub fn counter_add(name: &str, n: u64) {
    if !is_enabled() {
        return;
    }
    with_active(|rec| rec.counter_add(name, n));
}

/// Sets the named gauge (last write wins). No-op when disabled.
#[inline]
pub fn gauge_set(name: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    with_active(|rec| rec.gauge_set(name, v));
}

/// Records `v` into the named histogram. No-op when disabled.
#[inline]
pub fn hist_record(name: &str, v: f64) {
    if !is_enabled() {
        return;
    }
    with_active(|rec| rec.hist_record(name, v));
}

/// Starts a wall-clock span that records elapsed microseconds into the
/// histogram `name` when dropped. Returns a no-op guard unless **both**
/// [`enable`] and [`enable_durations`] were called — the wall clock is
/// never read on the default path, keeping replayable pipelines clock-
/// free (the `no-wallclock` rule's intent; see DESIGN.md §9).
pub fn time_scope(name: &'static str) -> TimeScope {
    if !is_enabled() || !DURATIONS.load(Ordering::Relaxed) {
        return TimeScope { name, start: None };
    }
    // lint:allow(no-wallclock): opt-in duration sink; off by default, histogram-only, excluded from determinism diffs
    TimeScope { name, start: Some(std::time::Instant::now()) }
}

/// Guard returned by [`time_scope`].
#[derive(Debug)]
pub struct TimeScope {
    name: &'static str,
    start: Option<std::time::Instant>,
}

impl Drop for TimeScope {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let micros = start.elapsed().as_secs_f64() * 1e6;
            hist_record(self.name, micros);
        }
    }
}

/// Clones out everything recorded so far (events + metrics).
pub fn snapshot() -> Snapshot {
    with_active(Recorder::snapshot)
}

/// Clears the active recorder (events, clocks, and metrics). The
/// enabled flags are left as they are.
pub fn reset() {
    with_active(Recorder::reset);
}

/// Runs `f` with a fresh thread-local recorder installed and recording
/// enabled, then restores the previous state and returns `f`'s result
/// together with everything the closure recorded **on this thread**.
///
/// Pool workers spawned inside `f` still record to the global recorder
/// (counters are order-independent, so that is safe); events emitted
/// from sequential orchestration code on the calling thread — the only
/// place events are allowed — are captured exactly.
pub fn with_local<R>(f: impl FnOnce() -> R) -> (R, Snapshot) {
    let rec = Arc::new(Recorder::new());
    let prev_local = LOCAL.with(|local| local.borrow_mut().replace(Arc::clone(&rec)));
    let was_enabled = is_enabled();
    enable();
    let out = f();
    if !was_enabled {
        disable();
    }
    LOCAL.with(|local| *local.borrow_mut() = prev_local);
    let snap = rec.snapshot();
    (out, snap)
}

// ---- JSONL export ------------------------------------------------------

/// Renders the active recorder's contents as JSON Lines
/// (`tradefl-trace/v1`): one `meta` line, one line per event in
/// logical-clock order, then `counter`/`gauge`/`hist` lines in name
/// order. The output is a pure function of the recording, so a
/// deterministic run exports identical bytes.
pub fn export_jsonl() -> String {
    snapshot().to_jsonl()
}

/// Scans the process arguments for `--trace <path>` (or
/// `--trace=<path>`); when present, enables recording and returns the
/// output path. Call once at the top of a binary, then pass the path to
/// [`write_trace`] at the end:
///
/// ```no_run
/// use tradefl_runtime::obs;
///
/// let trace = obs::trace_path_from_args();
/// // ... run the workload ...
/// if let Some(path) = &trace {
///     obs::write_trace(path).expect("write trace");
/// }
/// ```
pub fn trace_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let path = args.next()?;
            enable();
            return Some(path.into());
        }
        if let Some(path) = arg.strip_prefix("--trace=") {
            enable();
            return Some(path.into());
        }
    }
    None
}

/// Writes the active recorder's JSONL export to `path`.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_trace(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, export_jsonl())
}

impl Snapshot {
    /// Renders this snapshot as `tradefl-trace/v1` JSON Lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        let _ = write!(
            out,
            "{{\"kind\":\"meta\",\"schema\":\"{}\",\"events\":{},\"events_dropped\":{}}}\n",
            TRACE_SCHEMA,
            self.events.len(),
            self.events_dropped
        );
        for ev in &self.events {
            let _ = write!(
                out,
                "{{\"kind\":\"event\",\"sub\":\"{}\",\"seq\":{},\"name\":",
                ev.subsystem.name(),
                ev.seq
            );
            json_string(&mut out, ev.name);
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in ev.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(&mut out, k);
                out.push(':');
                json_field(&mut out, *v);
            }
            out.push_str("}}\n");
        }
        for (name, value) in &self.counters {
            out.push_str("{\"kind\":\"counter\",\"name\":");
            json_string(&mut out, name);
            let _ = write!(out, ",\"value\":{value}}}\n");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"kind\":\"gauge\",\"name\":");
            json_string(&mut out, name);
            out.push_str(",\"value\":");
            json_f64(&mut out, *value);
            out.push_str("}\n");
        }
        for (name, h) in &self.histograms {
            out.push_str("{\"kind\":\"hist\",\"name\":");
            json_string(&mut out, name);
            let _ = write!(out, ",\"count\":{}", h.count);
            out.push_str(",\"sum\":");
            json_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            json_f64(&mut out, if h.count == 0 { 0.0 } else { h.min });
            out.push_str(",\"max\":");
            json_f64(&mut out, if h.count == 0 { 0.0 } else { h.max });
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{i},{c}]");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Only the event lines of [`Snapshot::to_jsonl`] — the portion the
    /// determinism suite compares across worker counts (metrics like
    /// pool-steal counts are legitimately scheduling-dependent).
    pub fn events_jsonl(&self) -> String {
        self.to_jsonl()
            .lines()
            .filter(|l| l.starts_with("{\"kind\":\"event\""))
            .fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            })
    }
}

fn json_field(out: &mut String, v: FieldValue) {
    match v {
        FieldValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(x) => json_f64(out, x),
        FieldValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::Str(s) => json_string(out, s),
    }
}

/// Writes an `f64` as JSON. Rust's `Display` is the shortest exact
/// round-trip representation (deterministic across platforms);
/// non-finite values, which JSON cannot carry as numbers, become
/// strings.
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("\"NaN\"");
    } else if v > 0.0 {
        out.push_str("\"Infinity\"");
    } else {
        out.push_str("\"-Infinity\"");
    }
}

/// Writes a JSON string literal with escaping.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        // Fresh local recorder, *without* enabling: free functions on a
        // disabled process must not touch it.
        let rec = Arc::new(Recorder::new());
        let prev = LOCAL.with(|l| l.borrow_mut().replace(Arc::clone(&rec)));
        let was_enabled = is_enabled();
        disable();
        event(Subsystem::Cgbd, "iteration", &[("k", 1u64.into())]);
        counter_add("c", 1);
        gauge_set("g", 1.0);
        hist_record("h", 1.0);
        if was_enabled {
            enable();
        }
        LOCAL.with(|l| *l.borrow_mut() = prev);
        let snap = rec.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn logical_clocks_are_per_subsystem_and_monotonic() {
        let ((), snap) = with_local(|| {
            event(Subsystem::Cgbd, "a", &[]);
            event(Subsystem::Dbr, "b", &[]);
            event(Subsystem::Cgbd, "c", &[]);
        });
        assert_eq!(snap.events.len(), 3);
        assert_eq!((snap.events[0].subsystem, snap.events[0].seq), (Subsystem::Cgbd, 0));
        assert_eq!((snap.events[1].subsystem, snap.events[1].seq), (Subsystem::Dbr, 0));
        assert_eq!((snap.events[2].subsystem, snap.events[2].seq), (Subsystem::Cgbd, 1));
    }

    #[test]
    fn counters_gauges_histograms_aggregate() {
        let ((), snap) = with_local(|| {
            counter_add("n", 2);
            counter_add("n", 3);
            gauge_set("level", 1.0);
            gauge_set("level", -4.5);
            for v in [0.5, 2.0, 2.0, 1e9] {
                hist_record("vals", v);
            }
        });
        assert_eq!(snap.counters["n"], 5);
        assert_eq!(snap.gauges["level"], -4.5);
        let h = &snap.histograms["vals"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e9);
        assert_eq!(h.buckets.iter().sum::<u64>(), 4);
    }

    #[test]
    fn bucket_layout_is_fixed_and_total() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), Histogram::BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), Histogram::BUCKETS - 1);
        // Monotone in magnitude.
        let mut prev = 0;
        let mut v = 1e-12;
        while v < 1e12 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= prev, "bucket index not monotone at {v}");
            prev = idx;
            v *= 3.7;
        }
    }

    #[test]
    fn jsonl_export_is_deterministic_and_schema_shaped() {
        let run = || {
            let ((), snap) = with_local(|| {
                event(
                    Subsystem::Fed,
                    "round",
                    &[("round", 1u64.into()), ("loss", 0.25f64.into()), ("tag", "x\"y".into())],
                );
                counter_add("fed.rounds", 1);
                gauge_set("fed.last_accuracy", 0.5);
                hist_record("primal.iterations", 12.0);
            });
            snap.to_jsonl()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "export must be bit-identical for identical runs");
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].contains("tradefl-trace/v1"));
        assert!(lines[1].contains("\"kind\":\"event\""));
        assert!(lines[1].contains("\"sub\":\"fed\""));
        assert!(lines[1].contains("\\\"y"), "string fields are escaped: {}", lines[1]);
        assert!(a.contains("\"kind\":\"counter\""));
        assert!(a.contains("\"kind\":\"gauge\""));
        assert!(a.contains("\"kind\":\"hist\""));
    }

    #[test]
    fn events_jsonl_filters_metrics_out() {
        let ((), snap) = with_local(|| {
            event(Subsystem::Ledger, "block_mined", &[("txs", 3u64.into())]);
            counter_add("ledger.txs", 3);
        });
        let events_only = snap.events_jsonl();
        assert_eq!(events_only.lines().count(), 1);
        assert!(events_only.contains("block_mined"));
        assert!(!events_only.contains("counter"));
    }

    #[test]
    fn event_buffer_is_bounded() {
        let rec = Recorder::new();
        // Synthesize overflow cheaply by pre-filling the buffer.
        {
            let mut buf = rec.events.lock();
            buf.records = Vec::with_capacity(MAX_EVENTS);
            for _ in 0..MAX_EVENTS {
                buf.records.push(Event {
                    subsystem: Subsystem::Pool,
                    seq: 0,
                    name: "x",
                    fields: Vec::new(),
                });
            }
        }
        rec.event(Subsystem::Pool, "overflow", &[]);
        let snap = rec.snapshot();
        assert_eq!(snap.events.len(), MAX_EVENTS);
        assert_eq!(snap.events_dropped, 1);
    }

    #[test]
    fn time_scope_is_noop_without_double_opt_in() {
        let ((), snap) = with_local(|| {
            // enabled (with_local) but durations NOT opted in:
            let guard = time_scope("span.micros");
            drop(guard);
        });
        assert!(snap.histograms.is_empty(), "no duration recorded without opt-in");
    }

    #[test]
    fn nonfinite_floats_export_as_strings() {
        let mut s = String::new();
        json_f64(&mut s, f64::NAN);
        json_f64(&mut s, f64::INFINITY);
        json_f64(&mut s, f64::NEG_INFINITY);
        assert_eq!(s, "\"NaN\"\"Infinity\"\"-Infinity\"");
    }
}
