//! **tradefl-runtime** — the zero-dependency substrate for the TradeFL
//! workspace.
//!
//! The reproduction validates the paper's claims (Eq. (9)–(11)
//! redistribution, Theorem 1's weighted potential, Algorithms 1–2)
//! purely through deterministic, seeded simulation. Nothing requires a
//! crates.io dependency, and the build environment has no registry
//! access, so everything the workspace used to pull from the registry
//! lives here instead, fully controlled and auditable:
//!
//! * [`rng`] — a seedable xoshiro256++ generator (SplitMix64 seeding)
//!   with the `rand`-style trait surface the workspace uses
//!   (`seed_from_u64`, `gen_range`, `gen_bool`, `shuffle`, Gaussian
//!   draws for data synthesis);
//! * [`sync`] — std-backed, poison-transparent `Mutex`/`RwLock`
//!   wrappers (replacing `parking_lot`) and scoped-thread + channel
//!   helpers (replacing `crossbeam`);
//! * [`codec`] — a byte-oriented buffer ([`codec::BytesMut`], the
//!   [`codec::Buf`] cursor trait) replacing `bytes`, plus the
//!   [`codec::ByteEncode`]/[`codec::ByteDecode`] traits and the
//!   derive-free [`impl_codec!`] macro replacing `serde` derives;
//! * [`check`] — a seeded property-testing harness (the [`props!`]
//!   macro with generator methods on [`check::Gen`], fixed-seed
//!   replay via `TRADEFL_PROP_SEED`, and structural tape-based
//!   shrinking toward minimal counterexamples) replacing `proptest`;
//! * [`bench`] — a wall-clock benchmark runner and the
//!   [`bench_group!`]/[`bench_main!`] macros replacing `criterion` for
//!   `harness = false` bench targets;
//! * [`obs`] — zero-cost-when-disabled observability: logical-clock
//!   events, counters/gauges/histograms, and a deterministic JSONL
//!   exporter (replacing `tracing` + `metrics`), honoring the
//!   no-wallclock and bit-determinism contracts;
//! * [`sim`] — deterministic simulation primitives: simulated time, a
//!   totally ordered seeded event queue, bounded backpressure queues,
//!   stateless Poisson arrival streams, and seeded fault injection
//!   ([`sim::faults`]) — the substrate under the `tradefl-engine`
//!   executor and its DST harness.
//!
//! The workspace-level guard test `tests/no_external_deps.rs` asserts
//! that no manifest ever reintroduces a registry dependency.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod check;
pub mod codec;
pub mod obs;
pub mod rng;
pub mod sim;
pub mod sync;
