//! A minimal wall-clock benchmark runner — the in-tree replacement for
//! `criterion` on `harness = false` bench targets.
//!
//! The API mirrors the subset of criterion the bench crate uses
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `throughput`, `Bencher::iter`), so bench files
//! migrate with an import swap plus the [`bench_group!`] /
//! [`bench_main!`] macros in place of `criterion_group!` /
//! `criterion_main!`.
//!
//! Measurement model: each benchmark warms up briefly, picks an
//! iteration count that fills a fixed time slice, then takes
//! `sample_size` timed samples and reports min/mean/max per iteration
//! (plus throughput when declared). Results print to stdout; there is
//! no statistical machinery — the workspace's perf claims are about
//! asymptotic scaling across parameters, which min-of-samples exposes
//! reliably.
//!
//! Set `TRADEFL_BENCH_FAST=1` to shrink time slices ~20x (used by CI,
//! which only needs the binaries to build and smoke-run).

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock per sample, normal mode.
const SAMPLE_BUDGET: Duration = Duration::from_millis(60);
/// Target wall-clock per sample under `TRADEFL_BENCH_FAST`.
const SAMPLE_BUDGET_FAST: Duration = Duration::from_millis(3);

/// Top-level benchmark context (criterion-compatible shape).
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    /// A fresh context. Non-flag command-line arguments become
    /// substring filters, so `cargo bench -- sha256` runs only the
    /// benchmarks whose full `group/id` name contains `sha256`
    /// (harness flags such as `--bench` are ignored).
    pub fn new() -> Self {
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        if self.selected(name) {
            run_one(name, None, None, |b| f(b));
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.parent.selected(&full) {
            run_one(&full, Some(self.sample_size), self.throughput, |b| f(b));
        }
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        if self.parent.selected(&full) {
            run_one(&full, Some(self.sample_size), self.throughput, |b| f(b, input));
        }
        self
    }

    /// Ends the group (no-op; kept for criterion compatibility).
    pub fn finish(&mut self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Declared per-iteration work, for derived throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing handle passed to each benchmark body.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `f` (the closure's return value is
    /// consumed so the optimizer cannot delete the work).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measures one benchmark and prints its report line.
fn run_one(
    name: &str,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
    mut body: impl FnMut(&mut Bencher),
) {
    let budget = if fast_mode() { SAMPLE_BUDGET_FAST } else { SAMPLE_BUDGET };
    let samples = sample_size.unwrap_or(10);

    // Calibrate: run once, scale the iteration count to fill the
    // per-sample budget.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    body(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        body(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(f64::total_cmp);
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10}/s", human_bytes(n as f64 / min))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / min)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<44} min {:>10}  mean {:>10}  max {:>10}  ({samples} samples x {iters} iters){tp}",
        human_time(min),
        human_time(mean),
        human_time(max),
    );
}

fn fast_mode() -> bool {
    std::env::var("TRADEFL_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2} GiB", rate / (1u64 << 30) as f64)
    } else if rate >= 1e6 {
        format!("{:.2} MiB", rate / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", rate / (1u64 << 10) as f64)
    }
}

/// Declares a benchmark group function from a list of `fn(&mut
/// Criterion)` benchmarks — the replacement for `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        fn $group(c: &mut $crate::bench::Criterion) {
            $($bench(c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target — the
/// replacement for `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::bench::Criterion::new();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_times_and_prints() {
        std::env::set_var("TRADEFL_BENCH_FAST", "1");
        // `default()` has no filters — `new()` would adopt the test
        // harness's own filter arguments as benchmark filters.
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<usize>()
            })
        });
        group.finish();
        assert!(ran > 0, "benchmark body executed");
    }

    #[test]
    fn filters_select_by_substring() {
        std::env::set_var("TRADEFL_BENCH_FAST", "1");
        let mut c = Criterion { filters: vec!["sha".into()] };
        let (mut hit, mut miss) = (false, false);
        c.bench_function("sha256/64", |b| b.iter(|| hit = true));
        c.bench_function("mine_block/10", |b| b.iter(|| miss = true));
        let mut group = c.benchmark_group("sha256");
        let mut group_hit = false;
        group.bench_function("1024", |b| b.iter(|| group_hit = true));
        group.finish();
        assert!(hit && group_hit && !miss);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
        assert_eq!(BenchmarkId::new("f", 2).0, "f/2");
    }
}
