//! Deterministic simulation testing (DST) for the market engine.
//!
//! Each case boots a full stack — solver, sessions, validator network,
//! archive ledger — inside the simulated event loop and subjects it to
//! a *seeded* fault schedule: dropped, duplicated, delayed, truncated,
//! and corrupted frames, plus kill-and-restart of validators mid-run.
//! The claims under test, for any seed:
//!
//! 1. **Convergence** — every surviving validator ends at the archive's
//!    exact tip hash and state root, bit-identical, and every session
//!    settles on-chain.
//! 2. **Replay identity** — running the same seed twice produces the
//!    identical [`EngineReport`] *and* the identical observability
//!    event stream, byte for byte.
//! 3. **Recovery** — a validator killed mid-run (losing all in-memory
//!    state) recovers purely by replaying the ledger and converges.
//! 4. **Checkpoint/restore** — a live engine serialized through the
//!    chain export/import codec and restored (on any worker-pool size)
//!    finishes in the same final state as the uninterrupted run.

use tradefl_engine::{Engine, EngineConfig, EngineReport, SessionSpec};
use tradefl_ledger::codec::{decode_chain, encode_chain};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::{CrashPlan, FaultConfig};
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

const VALIDATORS: usize = 3;
const HORIZON: u64 = 512;

/// A small-but-real configuration: one 3-org market session under the
/// given fault schedule.
fn dst_config(faults: FaultConfig) -> EngineConfig {
    EngineConfig {
        validators: VALIDATORS,
        sessions: vec![SessionSpec { name: "dst".into(), orgs: 3, seed: 2 }],
        batch_interval: 6,
        mean_arrival_gap: 2.0,
        admission_capacity: 8,
        horizon: HORIZON,
        faults,
        ..EngineConfig::default()
    }
}

/// Runs `(config, seed)` to completion under a local observability
/// recorder and returns the report plus the recorded event stream.
fn run_traced(config: EngineConfig, seed: u64) -> (EngineReport, String) {
    let (report, snapshot) = obs::with_local(|| {
        let mut engine = Engine::new(config, seed).expect("engine boots");
        engine.run().expect("run completes")
    });
    (report, snapshot.events_jsonl())
}

/// The headline DST sweep: 100 seeds, each deriving its own fault
/// schedule (frame faults + up to one kill-and-restart per node). Every
/// run must converge to bit-identical state across survivors, settle
/// all sessions, and replay to the identical report and event stream.
#[test]
fn hundred_seeded_fault_schedules_converge_and_replay_identically() {
    let mut crashy_seeds = 0u32;
    let mut healing_seeds = 0u32;
    for seed in 0..100u64 {
        let faults = FaultConfig::from_seed(seed, VALIDATORS, HORIZON);
        if !faults.crashes.is_empty() {
            crashy_seeds += 1;
        }
        let (report, trace) = run_traced(dst_config(faults.clone()), seed);
        assert!(
            report.converged,
            "seed {seed}: survivors diverged from the ledger: {report:?}"
        );
        assert!(
            report.fully_settled(),
            "seed {seed}: sessions did not settle: {report:?}"
        );
        assert_eq!(
            report.survivors,
            (0..VALIDATORS).collect::<Vec<_>>(),
            "seed {seed}: seeded schedules restart every crashed node"
        );
        if report.heals > 0 {
            healing_seeds += 1;
        }

        let (replay, replay_trace) = run_traced(dst_config(faults), seed);
        assert_eq!(report, replay, "seed {seed}: replay must be report-identical");
        assert_eq!(
            trace, replay_trace,
            "seed {seed}: replay must be event-stream-identical"
        );
    }
    // The sweep must actually exercise the fault machinery, not idle
    // through 100 quiet runs.
    assert!(crashy_seeds >= 20, "only {crashy_seeds}/100 schedules had crashes");
    assert!(healing_seeds >= 20, "only {healing_seeds}/100 runs healed a node");
}

// ---------------------------------------------------------------------
// Kill-and-restart regressions: explicit crash schedules, no frame
// faults, so each run isolates exactly one recovery scenario.
// ---------------------------------------------------------------------

fn crash_only(crashes: Vec<CrashPlan>) -> FaultConfig {
    FaultConfig { crashes, ..FaultConfig::none() }
}

/// A validator killed mid-run loses all in-memory state; its restart
/// recovers purely by replaying the archive and it converges.
#[test]
fn killed_node_recovers_by_ledger_replay_and_converges() {
    let faults = crash_only(vec![CrashPlan { node: 1, at: 40, down_for: 120 }]);
    let (report, _) = run_traced(dst_config(faults), 1);
    assert!(report.heals >= 1, "the restart must replay the ledger: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
    assert_eq!(report.survivors, vec![0, 1, 2]);
}

/// Killing the first proposer does not stall block production: the
/// rotation skips dead nodes, the session settles, and the dead node
/// catches up after its restart.
#[test]
fn killing_the_lead_proposer_does_not_stall_the_market() {
    let faults = crash_only(vec![CrashPlan { node: 0, at: 10, down_for: 300 }]);
    let (report, _) = run_traced(dst_config(faults), 2);
    assert!(report.blocks > 0, "peers must keep proposing: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
}

/// Two validators down at once (overlapping outages) leaves a single
/// live proposer; both recover and converge.
#[test]
fn overlapping_outages_of_two_nodes_still_converge() {
    let faults = crash_only(vec![
        CrashPlan { node: 1, at: 30, down_for: 150 },
        CrashPlan { node: 2, at: 60, down_for: 150 },
    ]);
    let (report, _) = run_traced(dst_config(faults), 3);
    assert!(report.heals >= 2, "both restarts must heal: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
}

/// Kill-and-restart under heavy frame faults at the same time: the
/// restarted node must recover even while gossip around it is lossy
/// and corrupting.
#[test]
fn restart_under_heavy_frame_faults_still_recovers() {
    let faults = FaultConfig {
        drop_p: 0.3,
        dup_p: 0.2,
        delay_p: 0.4,
        max_delay: 40,
        truncate_p: 0.2,
        corrupt_p: 0.2,
        crashes: vec![CrashPlan { node: 2, at: 50, down_for: 100 }],
    };
    let (report, _) = run_traced(dst_config(faults), 4);
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
    assert_eq!(report.survivors, vec![0, 1, 2]);
}

// ---------------------------------------------------------------------
// Checkpoint/restore properties (live sessions through the chain
// export/import codec).
// ---------------------------------------------------------------------

props! {
    #![cases = 10]

    /// Interrupting a faulty run at an arbitrary point, checkpointing,
    /// and restoring — on a worker pool of 1, 4, or 8 — finishes in
    /// exactly the uninterrupted run's final state.
    fn checkpoint_restore_matches_uninterrupted_run(g) {
        let seed = g.u64(0..1_000_000);
        let steps = g.usize(1..120);
        let faults = FaultConfig::from_seed(seed, VALIDATORS, HORIZON);

        let mut uninterrupted = Engine::new(dst_config(faults.clone()), seed).unwrap();
        let expected = uninterrupted.run().unwrap();

        let mut live = Engine::new(dst_config(faults.clone()), seed).unwrap();
        let mut remaining = steps;
        while remaining > 0 && live.step().unwrap() {
            remaining -= 1;
        }
        let bytes = live.checkpoint();

        for workers in [1usize, 4, 8] {
            let mut config = dst_config(faults.clone());
            config.workers = workers;
            let mut restored = Engine::restore(config, seed, &bytes).unwrap();
            let resumed = restored.run().unwrap();
            prop_assert_eq!(resumed.state_root, expected.state_root);
            prop_assert_eq!(resumed.final_height, expected.final_height);
            prop_assert_eq!(resumed.blocks, expected.blocks);
            prop_assert_eq!(resumed.survivors.clone(), expected.survivors.clone());
            prop_assert!(resumed.converged);
        }
    }

    /// The ledger export codec round-trips: export → import → export is
    /// byte-identical, and the imported chain carries the same tip.
    fn chain_export_import_export_is_byte_identical(g) {
        let seed = g.u64(0..1_000_000);
        let faults = FaultConfig::from_seed(seed, VALIDATORS, HORIZON);
        let mut engine = Engine::new(dst_config(faults), seed).unwrap();
        engine.run().unwrap();

        let exported = encode_chain(engine.archive().chain());
        let imported = decode_chain(&exported).unwrap();
        prop_assert_eq!(imported.tip_hash(), engine.archive().chain().tip_hash());
        prop_assert_eq!(imported.height(), engine.archive().chain().height());
        let re_exported = encode_chain(&imported);
        prop_assert_eq!(exported, re_exported);
    }

    /// A checkpoint taken at one point and restored twice yields two
    /// engines that finish bit-identically (restore is deterministic,
    /// not merely correct).
    fn restore_is_deterministic(g) {
        let seed = g.u64(0..1_000_000);
        let steps = g.usize(1..60);
        let faults = FaultConfig::from_seed(seed, VALIDATORS, HORIZON);

        let mut live = Engine::new(dst_config(faults.clone()), seed).unwrap();
        let mut remaining = steps;
        while remaining > 0 && live.step().unwrap() {
            remaining -= 1;
        }
        let bytes = live.checkpoint();

        let run_restored = |config: EngineConfig| {
            let (report, snapshot) = obs::with_local(|| {
                let mut e = Engine::restore(config, seed, &bytes).unwrap();
                e.run().unwrap()
            });
            (report, snapshot.events_jsonl())
        };
        let (a, ta) = run_restored(dst_config(faults.clone()));
        let (b, tb) = run_restored(dst_config(faults.clone()));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ta, tb);
    }
}
