//! Deterministic simulation testing (DST) for the market engine.
//!
//! Each case boots a full stack — solver, sessions, validator network
//! — inside the simulated event loop and subjects it to a *seeded*
//! fault schedule: dropped, duplicated, delayed, truncated, and
//! corrupted frames, kill-and-restart of validators mid-run, and
//! Byzantine proposers that gossip tampered blocks. The claims under
//! test, for any seed:
//!
//! 1. **Convergence** — every surviving validator ends at the
//!    canonical tip hash and state root, bit-identical, and every
//!    session settles on-chain — with the archive demoted to a passive
//!    observer (it stays at genesis; catch-up is gossip-only).
//! 2. **Replay identity** — running the same seed twice produces the
//!    identical [`EngineReport`] *and* the identical observability
//!    event stream, byte for byte — on any worker-pool size.
//! 3. **Recovery** — a validator killed mid-run (losing all in-memory
//!    state) recovers purely by pulling the ledger from live peers,
//!    and transactions lost with a crashed or lying proposer are
//!    re-queued and re-mined exactly once.
//! 4. **Checkpoint/restore** — a live engine serialized through the
//!    chain export/import codec and restored (on any worker-pool size)
//!    finishes in the same final state as the uninterrupted run.

use tradefl_engine::{Engine, EngineConfig, EngineReport, SessionSpec};
use tradefl_ledger::codec::{decode_chain, encode_chain};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::{ByzantineConfig, CrashPlan, FaultConfig};
use tradefl_runtime::{prop_assert, prop_assert_eq, props};

const VALIDATORS: usize = 3;
const HORIZON: u64 = 512;

/// A small-but-real configuration: one 3-org market session under the
/// given fault schedule.
fn dst_config(faults: FaultConfig) -> EngineConfig {
    EngineConfig {
        validators: VALIDATORS,
        sessions: vec![SessionSpec { name: "dst".into(), orgs: 3, seed: 2 }],
        batch_interval: 6,
        mean_arrival_gap: 2.0,
        admission_capacity: 8,
        horizon: HORIZON,
        faults,
        ..EngineConfig::default()
    }
}

/// [`dst_config`] plus a seed-derived Byzantine-proposer schedule —
/// the full adversarial surface in one configuration.
fn adversarial_config(seed: u64) -> EngineConfig {
    let mut config = dst_config(FaultConfig::from_seed(seed, VALIDATORS, HORIZON));
    config.byzantine = ByzantineConfig::from_seed(seed);
    config
}

/// Runs `(config, seed)` to completion under a local observability
/// recorder and returns the report plus the recorded event stream.
fn run_traced(config: EngineConfig, seed: u64) -> (EngineReport, String) {
    let (report, snapshot) = obs::with_local(|| {
        let mut engine = Engine::new(config, seed).expect("engine boots");
        engine.run().expect("run completes")
    });
    (report, snapshot.events_jsonl())
}

/// The headline DST sweep: 100 seeds, each deriving its own fault
/// schedule (frame faults + up to one kill-and-restart per node) *and*
/// its own Byzantine-proposer schedule. Every run must converge to
/// bit-identical state across survivors, settle all sessions, and
/// replay to the identical report and event stream.
#[test]
fn hundred_seeded_fault_schedules_converge_and_replay_identically() {
    let mut crashy_seeds = 0u32;
    let mut healing_seeds = 0u32;
    let mut byzantine_seeds = 0u32;
    for seed in 0..100u64 {
        let config = adversarial_config(seed);
        if !config.faults.crashes.is_empty() {
            crashy_seeds += 1;
        }
        let (report, trace) = run_traced(config.clone(), seed);
        assert!(
            report.converged,
            "seed {seed}: survivors diverged from the canonical chain: {report:?}"
        );
        assert!(
            report.fully_settled(),
            "seed {seed}: sessions did not settle: {report:?}"
        );
        assert_eq!(
            report.survivors,
            (0..VALIDATORS).collect::<Vec<_>>(),
            "seed {seed}: seeded schedules restart every crashed node"
        );
        if report.heals > 0 {
            healing_seeds += 1;
        }
        if report.byzantine_rounds > 0 {
            byzantine_seeds += 1;
        }

        let (replay, replay_trace) = run_traced(config, seed);
        assert_eq!(report, replay, "seed {seed}: replay must be report-identical");
        assert_eq!(
            trace, replay_trace,
            "seed {seed}: replay must be event-stream-identical"
        );
    }
    // The sweep must actually exercise the fault machinery, not idle
    // through 100 quiet runs.
    assert!(crashy_seeds >= 20, "only {crashy_seeds}/100 schedules had crashes");
    assert!(healing_seeds >= 20, "only {healing_seeds}/100 runs healed a node");
    assert!(byzantine_seeds >= 20, "only {byzantine_seeds}/100 runs saw a proposer lie");
}

/// The tentpole's proof: a sweep with the archive provably out of the
/// loop. Catch-up is gossip-only — crashed, lagging, and lied-to
/// replicas all recover by pulling from live peers — so the archive
/// must still be at genesis after every adversarial run that
/// nonetheless converged and settled.
#[test]
fn thirty_adversarial_seeds_converge_with_the_archive_offline() {
    let mut repaired_seeds = 0u32;
    for seed in 0..30u64 {
        let mut engine = Engine::new(adversarial_config(seed), seed).expect("engine boots");
        let report = engine.run().expect("run completes");
        assert!(report.converged, "seed {seed}: {report:?}");
        assert!(report.fully_settled(), "seed {seed}: {report:?}");
        assert_eq!(
            engine.archive().chain().height(),
            1,
            "seed {seed}: the archive must stay a genesis-only observer"
        );
        assert!(report.final_height > 1, "seed {seed}: the market must make blocks");
        if report.heals > 0 || report.byzantine_rounds > 0 {
            repaired_seeds += 1;
        }
    }
    assert!(
        repaired_seeds >= 10,
        "only {repaired_seeds}/30 runs exercised gossip-only repair"
    );
}

/// Workers must never leak into simulation outcomes: the same
/// adversarial schedule (faulted gossip + crashes + Byzantine
/// proposers, archive demoted) converges bit-identically — report and
/// event stream — across 1/4/8-worker pools.
#[test]
fn adversarial_runs_are_bit_identical_across_worker_pools() {
    let mut byzantine_and_crashy = 0u32;
    for seed in 0..8u64 {
        let run = |workers: usize| {
            let mut config = adversarial_config(seed);
            config.workers = workers;
            run_traced(config, seed)
        };
        let (r1, t1) = run(1);
        let (r4, t4) = run(4);
        let (r8, t8) = run(8);
        assert_eq!(r1, r4, "seed {seed}: 4-worker report drifted");
        assert_eq!(r1, r8, "seed {seed}: 8-worker report drifted");
        assert_eq!(t1, t4, "seed {seed}: 4-worker event stream drifted");
        assert_eq!(t1, t8, "seed {seed}: 8-worker event stream drifted");
        assert!(r1.converged && r1.fully_settled(), "seed {seed}: {r1:?}");
        if r1.byzantine_rounds > 0 && r1.heals > 0 {
            byzantine_and_crashy += 1;
        }
    }
    // The acceptance scenario — faulted gossip, crashed validators,
    // and at least one Byzantine proposer in the same run — must
    // actually occur in this matrix.
    assert!(byzantine_and_crashy >= 1, "no seed combined lies with repairs");
}

// ---------------------------------------------------------------------
// Kill-and-restart regressions: explicit crash schedules, no frame
// faults, so each run isolates exactly one recovery scenario.
// ---------------------------------------------------------------------

fn crash_only(crashes: Vec<CrashPlan>) -> FaultConfig {
    FaultConfig { crashes, ..FaultConfig::none() }
}

/// A validator killed mid-run loses all in-memory state; its restart
/// recovers purely by pulling the ledger from live peers and it
/// converges.
#[test]
fn killed_node_recovers_by_peer_catchup_and_converges() {
    let faults = crash_only(vec![CrashPlan { node: 1, at: 40, down_for: 120 }]);
    let (report, _) = run_traced(dst_config(faults), 1);
    assert!(report.heals >= 1, "the restart must rebuild from peers: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
    assert_eq!(report.survivors, vec![0, 1, 2]);
}

/// Satellite regression (zero-survivor convergence): kill every
/// validator permanently mid-run. Pre-fix, `converged_among(&[])` made
/// the report claim convergence over nobody; now the run winds down,
/// reports `no_survivors`, and refuses the vacuous claim.
#[test]
fn killing_all_validators_is_not_reported_as_convergence() {
    let faults = crash_only(
        (0..VALIDATORS)
            .map(|node| CrashPlan { node, at: 60, down_for: CrashPlan::NEVER_RESTARTS })
            .collect(),
    );
    let (report, trace) = run_traced(dst_config(faults.clone()), 5);
    assert!(report.no_survivors, "{report:?}");
    assert!(report.survivors.is_empty(), "{report:?}");
    assert!(!report.converged, "zero survivors must not be 'converged': {report:?}");
    assert!(!report.fully_settled(), "{report:?}");
    // The doomed run is still deterministic.
    let (replay, replay_trace) = run_traced(dst_config(faults), 5);
    assert_eq!(report, replay);
    assert_eq!(trace, replay_trace);
}

/// Satellite regression (election replay identity): checkpoint in the
/// middle of a crash schedule — after the crash, before the restart —
/// with Byzantine rounds in play, and resume. Pre-fix, a restore that
/// reset the proposer cursor (or an election that double-counted the
/// restarted validator) silently diverged replay; the term-based
/// election must resume bit-identically, down to the full report.
#[test]
fn checkpoint_mid_crash_schedule_resumes_elections_bit_identically() {
    let seed = 9;
    // Stretch arrivals so mining is still in progress inside both
    // outage windows: a restore that mis-resumes the election term
    // elects different proposers for the remaining rounds and the
    // reports diverge (Byzantine decisions consume differently).
    let mut config = dst_config(crash_only(vec![
        CrashPlan { node: 1, at: 40, down_for: 120 },
        CrashPlan { node: 2, at: 200, down_for: 80 },
    ]));
    config.mean_arrival_gap = 24.0;
    config.byzantine = ByzantineConfig { tamper_p: 0.3 };

    let mut uninterrupted = Engine::new(config.clone(), seed).unwrap();
    let expected = uninterrupted.run().unwrap();
    assert!(expected.byzantine_rounds > 0, "schedule must exercise elections: {expected:?}");
    assert!(expected.fully_settled(), "{expected:?}");
    assert!(expected.ticks > 280, "mining must span both outage windows: {expected:?}");

    // Checkpoint inside the first outage (node 1 down, restart pending)
    // and again inside the second; both must resume to the exact end
    // state of the uninterrupted run.
    for window in [(40u64, 160u64), (200, 280)] {
        let mut live = Engine::new(config.clone(), seed).unwrap();
        while live.now() < window.0 {
            assert!(live.step().unwrap(), "run ended before the outage window");
        }
        assert!(live.now() < window.1, "stepped past the outage window");
        let bytes = live.checkpoint();
        let mut restored = Engine::restore(config.clone(), seed, &bytes).unwrap();
        let resumed = restored.run().unwrap();
        assert_eq!(
            resumed, expected,
            "restore inside outage window {window:?} diverged"
        );
        // The election cursor itself must replay: a restore that reset
        // (or re-derived) the term would elect the right proposers only
        // by parity luck inside a 2-survivor window.
        assert_eq!(
            restored.term(),
            uninterrupted.term(),
            "election term diverged after restore in window {window:?}"
        );
    }
}

/// Satellite regression (crash-during-propose): with gossip totally
/// dropped, the first proposer mines a round that exists nowhere else,
/// then dies. The round's transactions must be re-queued and re-mined
/// by the next elected proposer — exactly once, no duplicate nonces —
/// and the session still settles.
#[test]
fn round_lost_with_crashed_proposer_is_requeued_and_remined_exactly_once() {
    let mut config = dst_config(FaultConfig {
        drop_p: 1.0, // no frame ever arrives: every block is sole-copy
        ..crash_only(vec![CrashPlan { node: 0, at: 8, down_for: 100 }])
    });
    config.validators = 2;
    let seed = 2;
    let mut engine = Engine::new(config, seed).unwrap();
    let report = engine.run().unwrap();
    assert!(report.requeues > 0, "the lost round must be re-queued: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");

    // Exactly-once: every scripted transaction appears in exactly one
    // block of the canonical chain (requeueing must not double-mine).
    let contract = engine.contract(0).unwrap();
    let scripted: Vec<_> =
        engine.session_plan(0).unwrap().scripted_txs(contract).collect();
    let chain = engine.network().validator(1).node.chain();
    for (k, tx) in scripted.iter().enumerate() {
        let mined_in = chain
            .blocks()
            .iter()
            .filter(|b| b.txs.iter().any(|t| t.hash() == tx.hash()))
            .count();
        assert_eq!(mined_in, 1, "scripted tx {k} mined {mined_in} times");
    }
}

/// Killing the first proposer does not stall block production: the
/// rotation skips dead nodes, the session settles, and the dead node
/// catches up after its restart.
#[test]
fn killing_the_lead_proposer_does_not_stall_the_market() {
    let faults = crash_only(vec![CrashPlan { node: 0, at: 10, down_for: 300 }]);
    let (report, _) = run_traced(dst_config(faults), 2);
    assert!(report.blocks > 0, "peers must keep proposing: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
}

/// Two validators down at once (overlapping outages) leaves a single
/// live proposer; both recover and converge.
#[test]
fn overlapping_outages_of_two_nodes_still_converge() {
    let faults = crash_only(vec![
        CrashPlan { node: 1, at: 30, down_for: 150 },
        CrashPlan { node: 2, at: 60, down_for: 150 },
    ]);
    let (report, _) = run_traced(dst_config(faults), 3);
    assert!(report.heals >= 2, "both restarts must heal: {report:?}");
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
}

/// Kill-and-restart under heavy frame faults at the same time: the
/// restarted node must recover even while gossip around it is lossy
/// and corrupting.
#[test]
fn restart_under_heavy_frame_faults_still_recovers() {
    let faults = FaultConfig {
        drop_p: 0.3,
        dup_p: 0.2,
        delay_p: 0.4,
        max_delay: 40,
        truncate_p: 0.2,
        corrupt_p: 0.2,
        crashes: vec![CrashPlan { node: 2, at: 50, down_for: 100 }],
    };
    let (report, _) = run_traced(dst_config(faults), 4);
    assert!(report.converged, "{report:?}");
    assert!(report.fully_settled(), "{report:?}");
    assert_eq!(report.survivors, vec![0, 1, 2]);
}

// ---------------------------------------------------------------------
// Checkpoint/restore properties (live sessions through the chain
// export/import codec).
// ---------------------------------------------------------------------

props! {
    #![cases = 10]

    /// Interrupting an adversarial run (frame faults + crashes +
    /// Byzantine proposers) at an arbitrary point, checkpointing, and
    /// restoring — on a worker pool of 1, 4, or 8 — finishes in
    /// exactly the uninterrupted run's final state.
    fn checkpoint_restore_matches_uninterrupted_run(g) {
        let seed = g.u64(0..1_000_000);
        let steps = g.usize(1..120);

        let mut uninterrupted = Engine::new(adversarial_config(seed), seed).unwrap();
        let expected = uninterrupted.run().unwrap();

        let mut live = Engine::new(adversarial_config(seed), seed).unwrap();
        let mut remaining = steps;
        while remaining > 0 && live.step().unwrap() {
            remaining -= 1;
        }
        let bytes = live.checkpoint();

        for workers in [1usize, 4, 8] {
            let mut config = adversarial_config(seed);
            config.workers = workers;
            let mut restored = Engine::restore(config, seed, &bytes).unwrap();
            let resumed = restored.run().unwrap();
            prop_assert_eq!(resumed.state_root, expected.state_root);
            prop_assert_eq!(resumed.final_height, expected.final_height);
            prop_assert_eq!(resumed.blocks, expected.blocks);
            prop_assert_eq!(resumed.survivors.clone(), expected.survivors.clone());
            prop_assert!(resumed.converged);
        }
    }

    /// The ledger export codec round-trips: export → import → export is
    /// byte-identical, and the imported chain carries the same tip.
    /// (Exports now come from a converged replica — the archive is a
    /// genesis-only observer during runs.)
    fn chain_export_import_export_is_byte_identical(g) {
        let seed = g.u64(0..1_000_000);
        let mut engine = Engine::new(adversarial_config(seed), seed).unwrap();
        let report = engine.run().unwrap();
        prop_assert!(report.converged);

        let chain = engine.network().validator(0).node.chain();
        let exported = encode_chain(chain);
        let imported = decode_chain(&exported).unwrap();
        prop_assert_eq!(imported.tip_hash(), chain.tip_hash());
        prop_assert_eq!(imported.height(), chain.height());
        let re_exported = encode_chain(&imported);
        prop_assert_eq!(exported, re_exported);
    }

    /// A checkpoint taken at one point and restored twice yields two
    /// engines that finish bit-identically (restore is deterministic,
    /// not merely correct).
    fn restore_is_deterministic(g) {
        let seed = g.u64(0..1_000_000);
        let steps = g.usize(1..60);

        let mut live = Engine::new(adversarial_config(seed), seed).unwrap();
        let mut remaining = steps;
        while remaining > 0 && live.step().unwrap() {
            remaining -= 1;
        }
        let bytes = live.checkpoint();

        let run_restored = || {
            let (report, snapshot) = obs::with_local(|| {
                let mut e = Engine::restore(adversarial_config(seed), seed, &bytes).unwrap();
                e.run().unwrap()
            });
            (report, snapshot.events_jsonl())
        };
        let (a, ta) = run_restored();
        let (b, tb) = run_restored();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(ta, tb);
    }

}

/// The structural shrinker minimizes a failing engine DST schedule: a
/// known-bad seed (its drawn schedule forces repairs) shrinks to a
/// strictly smaller tape whose scenario still triggers the failure.
/// One pinned seed, not a prop — each shrink search replays hundreds
/// of engine runs.
#[test]
fn shrinker_minimizes_a_known_bad_schedule() {
    let outcome = tradefl_engine::shrink_repair_schedule(7)
        .expect("seed 7's schedule must force a repair");
    assert!(
        outcome.minimized_draws < outcome.initial_draws,
        "shrink must strictly reduce the tape: {} -> {} ({} evals)",
        outcome.initial_draws,
        outcome.minimized_draws,
        outcome.evals
    );
    assert!(outcome.evals > 0);
    assert!(outcome.msg.contains("repair"), "{}", outcome.msg);
    // The minimal schedule still prints as a complete, replayable case.
    let text = outcome.scenario.to_string();
    assert!(text.contains("seed="), "{text}");
    assert!(text.contains("crashes=["), "{text}");
}
