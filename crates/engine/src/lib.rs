//! **tradefl-engine** — the persistent market engine.
//!
//! The paper's prototype settles one trading session at a time; a real
//! deployment is a *service*: many concurrent market sessions, open-loop
//! transaction arrival, block production on a cadence, nodes that crash
//! and recover. This crate hosts exactly that on top of the existing
//! substrate, under the workspace determinism contract:
//!
//! * [`engine`] — a deterministic event-loop executor over simulated
//!   time ([`tradefl_runtime::sim`]): transaction admission with
//!   bounded-queue backpressure, proposer election over the live
//!   validator set, batching into blocks through the ledger's
//!   untrusted byte path
//!   ([`tradefl_ledger::network::Network::deliver_frame`]), seeded
//!   fault injection on every broadcast and a seeded
//!   Byzantine-proposer schedule ([`tradefl_runtime::sim::faults`]),
//!   gossip-only catch-up (crashed, lagging, or diverged replicas pull
//!   the ledger from their live peers — no trusted node), and
//!   checkpoint/restore of live sessions through the chain
//!   export/import codec.
//! * [`session`] — a market session as a deterministic settlement
//!   script: equilibrium solved up front (`tradefl-solver`), then the
//!   Fig. 3 call sequence (register → deposit → contribute → calculate
//!   → transfer → record) unrolled into an ordered transaction list
//!   with per-organization nonces.
//! * [`dst`] — DST scenarios (fault + crash + Byzantine schedules)
//!   drawn from a shrinkable tape, so a failing schedule is minimized
//!   by [`tradefl_runtime::check::shrink`] and printed.
//!
//! Everything is a pure function of `(config, seed)`: the
//! deterministic-simulation-testing harness (`tests/sim_engine.rs`)
//! runs hundreds of seeded fault schedules and asserts that all
//! surviving nodes converge to bit-identical state roots and that
//! replaying a seed reproduces the identical observability event
//! stream.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod dst;
pub mod engine;
pub mod session;

pub use dst::{shrink_repair_schedule, Scenario, ShrinkOutcome};
pub use engine::{Engine, EngineConfig, EngineError, EngineReport};
pub use session::{SessionPlan, SessionSpec};
