//! Engine-level DST scenarios and structural shrinking.
//!
//! A [`Scenario`] is a complete fault + crash + Byzantine schedule
//! drawn from a [`tradefl_runtime::check::Gen`], which means a failing
//! schedule is a failing *draw tape* — exactly what
//! [`tradefl_runtime::check::shrink`] knows how to minimize. On a
//! failing DST seed, [`shrink_repair_schedule`] replays the shrinker's
//! failure-preserving mutations (truncate, zero, halve, decrement)
//! over the tape and hands back the minimal schedule that still
//! triggers the failure, ready to print.
//!
//! The same drawing path powers the randomized sweeps in
//! `tests/sim_engine.rs`, so a sweep counterexample and a shrunk
//! counterexample are the same kind of object.

use crate::engine::{Engine, EngineConfig, EngineReport};
use crate::session::SessionSpec;
use std::fmt;
use tradefl_runtime::check::{shrink, CaseFail, CaseResult, Gen};
use tradefl_runtime::sim::faults::{ByzantineConfig, CrashPlan, FaultConfig};

/// One complete engine DST case: everything stochastic about a run,
/// drawn from a single shrinkable tape.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The engine seed (drives arrivals, gossip faults, elections, and
    /// Byzantine decisions).
    pub seed: u64,
    /// Validator count.
    pub validators: usize,
    /// Wire faults plus the kill/restart schedule.
    pub faults: FaultConfig,
    /// Byzantine-proposer schedule.
    pub byzantine: ByzantineConfig,
}

impl Scenario {
    /// Draws a scenario. Every field goes through the generator so the
    /// shrinker can zero it: a minimal counterexample has as few
    /// crashes, as little wire noise, and as low a tamper rate as the
    /// failure allows. The Byzantine rate is drawn *early* so the
    /// shrinker's truncation ladder (an exhausted tape reads as zeros,
    /// which quiets every later field) can cut the schedule down to
    /// `[seed, validators, tamper]` when tampering alone reproduces
    /// the failure.
    pub fn draw(g: &mut Gen) -> Self {
        let seed = g.any_u64();
        let validators = g.usize(2..=4);
        let byzantine = ByzantineConfig { tamper_p: g.f64(0.0..0.4) };
        let faults = FaultConfig {
            drop_p: g.f64(0.0..0.3),
            dup_p: g.f64(0.0..0.2),
            delay_p: g.f64(0.0..0.4),
            max_delay: g.u64(0..24),
            truncate_p: g.f64(0.0..0.15),
            corrupt_p: g.f64(0.0..0.15),
            crashes: g.vec(0..=3usize, |g| {
                let node = g.usize(0..4);
                let at = g.u64(1..256);
                let down_for =
                    if g.bool(0.25) { CrashPlan::NEVER_RESTARTS } else { g.u64(8..128) };
                CrashPlan { node, at, down_for }
            }),
        };
        Self { seed, validators, faults, byzantine }
    }

    /// The engine configuration this scenario runs under: one small
    /// session, a short horizon — cheap enough that the shrinker can
    /// afford hundreds of evaluations.
    pub fn config(&self) -> EngineConfig {
        EngineConfig {
            validators: self.validators,
            sessions: vec![SessionSpec { name: "dst-0".into(), orgs: 3, seed: 1 }],
            horizon: 512,
            faults: self.faults.clone(),
            byzantine: self.byzantine.clone(),
            ..EngineConfig::default()
        }
    }

    /// Runs the scenario to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::engine::EngineError`] — under fault
    /// injection these are engine bugs, not expected outcomes.
    pub fn run(&self) -> Result<EngineReport, crate::engine::EngineError> {
        Engine::new(self.config(), self.seed)?.run()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fc = &self.faults;
        write!(
            f,
            "seed={} validators={} drop={:.3} dup={:.3} delay={:.3}/{} trunc={:.3} \
             corrupt={:.3} tamper={:.3} crashes=[",
            self.seed,
            self.validators,
            fc.drop_p,
            fc.dup_p,
            fc.delay_p,
            fc.max_delay,
            fc.truncate_p,
            fc.corrupt_p,
            self.byzantine.tamper_p,
        )?;
        for (i, c) in fc.crashes.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            if c.restarts() {
                write!(f, "{sep}n{}@{}+{}", c.node, c.at, c.down_for)?;
            } else {
                write!(f, "{sep}n{}@{}+never", c.node, c.at)?;
            }
        }
        write!(f, "]")
    }
}

/// The property the shrinker smoke minimizes: a scenario "fails" the
/// moment its schedule forces any repair at all — a heal (crash
/// recovery or divergence) or a Byzantine round. That makes almost
/// every noisy schedule a counterexample, and the minimal one is the
/// cheapest schedule that still exercises the repair path.
pub fn repair_triggering_prop(g: &mut Gen) -> CaseResult {
    let scenario = Scenario::draw(g);
    let report = scenario.run().map_err(|e| CaseFail::fail(e.to_string()))?;
    if report.heals > 0 || report.byzantine_rounds > 0 {
        return Err(CaseFail::fail(format!(
            "schedule forces repair (heals={} byzantine_rounds={}): {scenario}",
            report.heals, report.byzantine_rounds
        )));
    }
    Ok(())
}

/// Outcome of one shrinker-smoke run (see [`shrink_repair_schedule`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ShrinkOutcome {
    /// Draws on the original failing tape.
    pub initial_draws: usize,
    /// Draws on the minimized tape (strictly smaller whenever any
    /// truncation preserved the failure).
    pub minimized_draws: usize,
    /// Property evaluations the search spent.
    pub evals: usize,
    /// The minimal scenario, re-drawn from the minimized tape.
    pub scenario: Scenario,
    /// The failure message the minimal scenario produces.
    pub msg: String,
}

/// Shrinks the repair-triggering schedule at `seed` to a minimal one.
/// Returns `None` when the seed's schedule never triggers a repair
/// (nothing to shrink).
pub fn shrink_repair_schedule(seed: u64) -> Option<ShrinkOutcome> {
    let mut g = Gen::new(seed, 1.0);
    if repair_triggering_prop(&mut g).is_ok() {
        return None;
    }
    let initial_draws = g.tape().len();
    let shrunk = shrink(&repair_triggering_prop, seed)?;
    let scenario = Scenario::draw(&mut Gen::from_tape(&shrunk.tape, 1.0));
    Some(ShrinkOutcome {
        initial_draws,
        minimized_draws: shrunk.tape.len(),
        evals: shrunk.evals,
        scenario,
        msg: shrunk.msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_draw_deterministically() {
        let a = Scenario::draw(&mut Gen::new(9, 1.0));
        let b = Scenario::draw(&mut Gen::new(9, 1.0));
        assert_eq!(a, b);
        assert!((2..=4).contains(&a.validators));
        assert!(a.faults.crashes.len() <= 3);
    }

    #[test]
    fn scenario_display_prints_the_whole_schedule() {
        let s = Scenario {
            seed: 7,
            validators: 3,
            faults: FaultConfig {
                crashes: vec![
                    CrashPlan { node: 1, at: 40, down_for: 20 },
                    CrashPlan { node: 2, at: 60, down_for: CrashPlan::NEVER_RESTARTS },
                ],
                ..FaultConfig::none()
            },
            byzantine: ByzantineConfig { tamper_p: 0.25 },
        };
        let text = s.to_string();
        assert!(text.contains("seed=7"), "{text}");
        assert!(text.contains("tamper=0.250"), "{text}");
        assert!(text.contains("n1@40+20"), "{text}");
        assert!(text.contains("n2@60+never"), "{text}");
    }

    #[test]
    fn quiet_schedules_have_nothing_to_shrink() {
        // A zeroed tape draws the quietest possible scenario: no wire
        // noise, no crashes, no lies — the prop passes, shrink is None.
        let quiet = Scenario::draw(&mut Gen::from_tape(&[], 1.0));
        assert!(quiet.faults.crashes.is_empty());
        let report = quiet.run().unwrap();
        assert_eq!(report.heals, 0);
        assert_eq!(report.byzantine_rounds, 0);
    }
}

