//! A market session as a deterministic settlement script.
//!
//! Off-chain, a session is a coopetition game: the engine solves it to
//! equilibrium once (Algorithm 2 via `tradefl-solver`) at plan-build
//! time. On-chain, it is the Fig. 3 procedure — register → deposit →
//! contribute → calculate → transfer → record. [`SessionPlan::build`]
//! unrolls that procedure into an ordered transaction list with
//! correct per-organization nonces, so the *runtime* state of a live
//! session is a single cursor into the script. That makes sessions
//! trivially checkpointable: the cursor is the checkpoint.
//!
//! Organization addresses are prefixed with the session name
//! (`"{session}/{org}"`), so any number of sessions coexist on one
//! chain without account collisions.

use crate::engine::EngineError;
use tradefl_core::accuracy::SqrtAccuracy;
use tradefl_core::config::MarketConfig;
use tradefl_core::game::CoopetitionGame;
use tradefl_ledger::settlement::DEFAULT_WEI_PER_UNIT;
use tradefl_ledger::tradefl_contract::SessionParams;
use tradefl_ledger::tx::{Transaction, TxPayload, Value};
use tradefl_ledger::types::{Address, Fixed, Wei};
use tradefl_runtime::sync::pool::Pool;
use tradefl_solver::DbrSolver;

/// Gas limit on every scripted settlement call (mirrors the settlement
/// driver's).
const CALL_GAS: u64 = 10_000_000;

/// What to simulate for one market session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// Session name — prefixes every participant address, so it must be
    /// unique within one engine run.
    pub name: String,
    /// Number of participating organizations (≥ 2).
    pub orgs: usize,
    /// Seed for the session's market draw (Table II parameters).
    pub seed: u64,
}

/// A fully resolved session: market, equilibrium, contract parameters,
/// and the scripted transaction sequence. Everything here is a pure
/// function of the [`SessionSpec`] (and the solver pool's worker count
/// never changes results bit-for-bit, per the workspace determinism
/// contract).
#[derive(Debug, Clone)]
pub struct SessionPlan {
    /// The spec this plan was built from.
    pub spec: SessionSpec,
    /// Participant addresses, session-prefixed, in market order.
    pub addresses: Vec<Address>,
    /// Genesis funding for the participants (4× the bond each).
    pub allocations: Vec<(Address, Wei)>,
    /// Contract constructor parameters (used to deploy, and to rebuild
    /// prototypes when a crashed validator restarts).
    pub params: SessionParams,
    /// The settlement procedure as ordered transactions with correct
    /// nonces. Submitting these in order, in any batching, settles the
    /// session.
    pub txs: Vec<Transaction>,
}

impl SessionPlan {
    /// Builds the plan: draws the market, solves the game to
    /// equilibrium on `pool`, converts parameters to the contract's
    /// fixed-point units (the same conversion the settlement driver
    /// uses), and scripts the Fig. 3 transaction sequence.
    ///
    /// # Errors
    ///
    /// [`EngineError::Session`] when the spec is degenerate (fewer than
    /// 2 orgs), the market draw fails validation, or the solver cannot
    /// produce an equilibrium.
    pub fn build(spec: SessionSpec, pool: &Pool) -> Result<Self, EngineError> {
        if spec.orgs < 2 {
            return Err(EngineError::Session {
                session: spec.name.clone(),
                reason: "a market needs at least 2 organizations".into(),
            });
        }
        let fail = |reason: String| EngineError::Session { session: spec.name.clone(), reason };
        let market = MarketConfig::table_ii()
            .with_orgs(spec.orgs)
            .build(spec.seed)
            .map_err(|e| fail(format!("market build: {e}")))?;
        let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
        let eq = DbrSolver::new()
            .solve_with(&game, pool)
            .map_err(|e| fail(format!("equilibrium solve: {e}")))?;

        let market = game.market();
        let n = market.len();
        let addresses: Vec<Address> = market
            .orgs()
            .iter()
            .map(|o| Address::from_name(&format!("{}/{}", spec.name, o.name())))
            .collect();

        // Bond sizing: worst-case |R_i| is bounded by γ' · q_max · x_max
        // (identical to the settlement driver's formula).
        let gamma_per_gbit = market.params().gamma * 1e9;
        let x_max = market
            .orgs()
            .iter()
            .map(|o| o.data_bits() / 1e9 + market.params().lambda * o.max_frequency() / 1e9)
            .fold(0.0f64, f64::max);
        let q_max =
            (0..n).map(|i| market.competition_pressure(i)).fold(0.0f64, f64::max);
        let bound_units = gamma_per_gbit * q_max * x_max * 1.05 + 1.0;
        let required_deposit =
            Wei((bound_units * DEFAULT_WEI_PER_UNIT as f64).ceil() as u128);

        let params = SessionParams {
            participants: addresses.clone(),
            gamma_per_gbit: Fixed::from_f64(gamma_per_gbit),
            lambda: Fixed::from_f64(market.params().lambda),
            rho: (0..n)
                .map(|i| (0..n).map(|j| Fixed::from_f64(market.rho(i, j))).collect())
                .collect(),
            s_gbits: market
                .orgs()
                .iter()
                .map(|o| Fixed::from_f64(o.data_bits() / 1e9))
                .collect(),
            required_deposit,
            wei_per_payoff_unit: DEFAULT_WEI_PER_UNIT,
            attestation_key: None,
        };

        let allocations: Vec<(Address, Wei)> =
            addresses.iter().map(|&a| (a, Wei(required_deposit.0 * 4))).collect();

        // Script the Fig. 3 sequence. Nonces are per address; the
        // contract address is unknown until deployment, so a
        // placeholder is patched in by `txs_for_contract`.
        let mut nonces = vec![0u64; n];
        let mut txs = Vec::with_capacity(4 * n + 2);
        let mut push = |who: usize, function: &str, args: Vec<Value>, value: Wei| {
            txs.push(Transaction {
                from: addresses[who],
                nonce: nonces[who],
                value,
                gas_limit: CALL_GAS,
                payload: TxPayload::Call {
                    contract: Address([0u8; 20]),
                    function: function.into(),
                    args,
                },
            });
            nonces[who] += 1;
        };
        for i in 0..n {
            push(i, "register", vec![], Wei::ZERO);
        }
        for i in 0..n {
            push(i, "depositSubmit", vec![], required_deposit);
        }
        for i in 0..n {
            let org = market.org(i);
            let d = Fixed::from_f64(eq.profile[i].d);
            let f_ghz = Fixed::from_f64(org.frequency(eq.profile[i].level) / 1e9);
            push(
                i,
                "contributionSubmit",
                vec![Value::Fixed(d), Value::Fixed(f_ghz)],
                Wei::ZERO,
            );
        }
        push(0, "payoffCalculate", vec![], Wei::ZERO);
        push(0, "payoffTransfer", vec![], Wei::ZERO);
        for i in 0..n {
            let addr = addresses[i];
            push(i, "profileRecord", vec![Value::Addr(addr)], Wei::ZERO);
        }

        Ok(Self { spec, addresses, allocations, params, txs })
    }

    /// The scripted transaction at `cursor`, with the deployed contract
    /// address patched in. `None` once the script is exhausted.
    pub fn tx_at(&self, cursor: usize, contract: Address) -> Option<Transaction> {
        let mut tx = self.txs.get(cursor)?.clone();
        if let TxPayload::Call { contract: c, .. } = &mut tx.payload {
            *c = contract;
        }
        Some(tx)
    }

    /// The full scripted sequence with the deployed contract address
    /// patched in — what the DST harness audits receipts against (each
    /// scripted transaction must land on the canonical chain exactly
    /// once, even when its first round was lost to a crashed or lying
    /// proposer).
    pub fn scripted_txs(&self, contract: Address) -> impl Iterator<Item = Transaction> + '_ {
        (0..self.len()).filter_map(move |k| self.tx_at(k, contract))
    }

    /// Script length (total transactions to settle this session).
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// Whether the script is empty (never true for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, orgs: usize, seed: u64) -> SessionSpec {
        SessionSpec { name: name.into(), orgs, seed }
    }

    #[test]
    fn plans_are_deterministic_and_worker_count_invariant() {
        let p1 = SessionPlan::build(spec("s", 3, 7), &Pool::new(1)).unwrap();
        let p4 = SessionPlan::build(spec("s", 3, 7), &Pool::new(4)).unwrap();
        assert_eq!(p1.txs, p4.txs, "worker count must not change the script");
        assert_eq!(p1.addresses, p4.addresses);
        assert_eq!(p1.params, p4.params);
    }

    #[test]
    fn scripts_carry_contiguous_per_org_nonces() {
        let p = SessionPlan::build(spec("s", 4, 3), &Pool::new(1)).unwrap();
        for &addr in &p.addresses {
            let nonces: Vec<u64> =
                p.txs.iter().filter(|t| t.from == addr).map(|t| t.nonce).collect();
            let expected: Vec<u64> = (0..nonces.len() as u64).collect();
            assert_eq!(nonces, expected, "nonces for {addr} must be 0..k in order");
        }
        assert_eq!(p.len(), 4 * 4 + 2);
    }

    #[test]
    fn sessions_with_different_names_do_not_share_addresses() {
        let a = SessionPlan::build(spec("alpha", 3, 7), &Pool::new(1)).unwrap();
        let b = SessionPlan::build(spec("beta", 3, 7), &Pool::new(1)).unwrap();
        for addr in &a.addresses {
            assert!(!b.addresses.contains(addr));
        }
    }

    #[test]
    fn degenerate_specs_error_instead_of_panicking() {
        assert!(SessionPlan::build(spec("s", 1, 0), &Pool::new(1)).is_err());
    }

    #[test]
    fn tx_at_patches_the_contract_address() {
        let p = SessionPlan::build(spec("s", 2, 1), &Pool::new(1)).unwrap();
        let c = Address::from_name("somewhere");
        let tx = p.tx_at(0, c).unwrap();
        match tx.payload {
            TxPayload::Call { contract, .. } => assert_eq!(contract, c),
            TxPayload::Transfer { .. } => panic!("scripted txs are calls"),
        }
        assert!(p.tx_at(p.len(), c).is_none());
    }
}
