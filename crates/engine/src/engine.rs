//! The deterministic event-loop executor.
//!
//! One [`Engine`] hosts a set of validator replicas (a
//! [`tradefl_ledger::network::Network`]) plus any number of concurrent
//! market sessions ([`crate::session`]), and drives everything from a
//! single totally ordered event queue over simulated time:
//!
//! * **Arrival** — a session's next scripted transaction reaches the
//!   admission queue (bounded: a full queue defers the arrival, which
//!   retries at the session's next Poisson tick — backpressure).
//! * **Batch** — on a fixed cadence, the next live proposer syncs to
//!   the engine's durable ledger, executes the admission queue into a
//!   block, and the encoded frame is *persisted to the archive first*,
//!   then gossiped to every peer through seeded fault injection
//!   (drop/duplicate/delay/truncate/corrupt).
//! * **Deliver** — a gossiped frame (possibly mutated) hits a replica's
//!   untrusted byte path
//!   ([`tradefl_ledger::network::Network::deliver_frame`]). Rejections
//!   are expected; a replica that fell behind pulls the gap from the
//!   archive, and a replica whose tip diverged (it accepted a mutated
//!   but self-consistent block) is healed by a full ledger replay.
//! * **Crash / Restart** — a node dies (loses all in-memory state) and
//!   later reboots from genesis, recovering purely by replaying the
//!   archive — the recovery invariant the DST harness pins.
//!
//! ## The archive is the source of truth
//!
//! The engine owns a non-validator *archive node*: every mined block is
//! applied to it (with full re-execution validation) before any gossip
//! happens. Because proposers sync to the archive before mining, the
//! chain is linear by construction — no two blocks ever compete for a
//! height, so any surviving replica can always be brought to the
//! archive's exact state by replay. [`Engine::checkpoint`] serializes
//! the archive through the chain export codec
//! ([`tradefl_ledger::codec::encode_chain`]) together with the
//! simulation counters; since every stochastic stream (arrivals,
//! tiebreaks, fault decisions) is a pure function of `(seed, counter)`,
//! [`Engine::restore`] resumes bit-identically.

use crate::session::{SessionPlan, SessionSpec};
use std::fmt;
use tradefl_ledger::codec::{
    bounded_count, decode_chain, decode_tx_bytes, encode_block_bytes, encode_chain,
    encode_tx_bytes, CodecError,
};
use tradefl_ledger::contract::Contract;
use tradefl_ledger::network::{FrameError, Network, NetworkError, WireLimits};
use tradefl_ledger::node::{BlockApplyError, Node};
use tradefl_ledger::tradefl_contract::TradeFlContract;
use tradefl_ledger::tx::{ExecStatus, Transaction};
use tradefl_ledger::types::{Address, Hash256, Wei};
use tradefl_runtime::codec::{Buf, BytesMut};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::{FaultConfig, FaultPlan};
use tradefl_runtime::sim::{substream, Bounded, EventQueue, Poisson, SimTime};
use tradefl_runtime::sync::pool::Pool;

/// Substream labels (one user-facing seed fans out into decorrelated
/// streams for each randomness consumer).
const STREAM_QUEUE: u64 = 0xE0;
const STREAM_FAULTS: u64 = 0xE1;
const STREAM_ARRIVALS: u64 = 0xA0;

/// Checkpoint format version.
const CHECKPOINT_VERSION: u8 = 1;

/// Smallest possible encoding of one pending-event queue entry:
/// time (8) + seq (8) + event tag (1). Bounds the declared entry count
/// in [`Engine::restore`] against the bytes actually present.
const PENDING_ENTRY_MIN_BYTES: usize = 17;

/// Everything the engine simulates, minus the seed.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of validator replicas (≥ 1).
    pub validators: usize,
    /// The market sessions to host concurrently (names must be unique).
    pub sessions: Vec<SessionSpec>,
    /// Ticks between block-production attempts.
    pub batch_interval: SimTime,
    /// Mean ticks between transaction arrivals per session (Poisson
    /// open-loop generator).
    pub mean_arrival_gap: f64,
    /// Admission queue capacity — arrivals beyond it are deferred
    /// (backpressure), retrying at the session's next arrival tick.
    pub admission_capacity: usize,
    /// Nominal run length in ticks: scales seeded fault schedules and
    /// the stall guard. The engine runs to completion regardless.
    pub horizon: SimTime,
    /// Fault injection applied to every gossiped frame, plus the
    /// kill-and-restart schedule.
    pub faults: FaultConfig,
    /// Wire-path frame size limit for every replica.
    pub max_frame_bytes: usize,
    /// Worker threads for the equilibrium solves (bit-identical results
    /// for any count, per the workspace determinism contract).
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            validators: 3,
            sessions: vec![SessionSpec { name: "market-0".into(), orgs: 3, seed: 0 }],
            batch_interval: 8,
            mean_arrival_gap: 3.0,
            admission_capacity: 16,
            horizon: 1 << 10,
            faults: FaultConfig::none(),
            max_frame_bytes: WireLimits::DEFAULT_MAX_FRAME_BYTES,
            workers: 1,
        }
    }
}

/// Errors from engine construction, execution, or restore.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration is unusable as given.
    Config(String),
    /// A session plan could not be built.
    Session {
        /// The offending session's name.
        session: String,
        /// What went wrong.
        reason: String,
    },
    /// Contract construction or deployment failed.
    Contract(String),
    /// A network operation failed.
    Network(NetworkError),
    /// Chain or checkpoint bytes failed to decode.
    Codec(CodecError),
    /// A checkpoint was malformed or inconsistent with the config.
    Checkpoint(String),
    /// The simulation exceeded its stall guard without completing.
    Stalled {
        /// Simulated time when the guard tripped.
        now: SimTime,
    },
    /// An internal consistency failure (a bug, not bad input).
    Internal(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(why) => write!(f, "bad engine config: {why}"),
            EngineError::Session { session, reason } => {
                write!(f, "session '{session}': {reason}")
            }
            EngineError::Contract(why) => write!(f, "contract error: {why}"),
            EngineError::Network(e) => write!(f, "network error: {e}"),
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::Checkpoint(why) => write!(f, "bad checkpoint: {why}"),
            EngineError::Stalled { now } => {
                write!(f, "simulation stalled at tick {now} without completing")
            }
            EngineError::Internal(what) => write!(f, "internal engine error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<NetworkError> for EngineError {
    fn from(e: NetworkError) -> Self {
        EngineError::Network(e)
    }
}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

/// One simulated occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Session `session`'s next scripted transaction arrives.
    Arrival {
        /// Session index.
        session: usize,
    },
    /// Block-production tick.
    Batch,
    /// A gossiped frame reaches replica `to`.
    Deliver {
        /// Receiving validator.
        to: usize,
        /// Frame bytes (possibly fault-mutated).
        frame: Vec<u8>,
    },
    /// Validator `node` dies.
    Crash {
        /// The node that dies.
        node: usize,
    },
    /// Validator `node` reboots (recovery replays the archive).
    Restart {
        /// The node that reboots.
        node: usize,
    },
}

impl Event {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Event::Arrival { session } => {
                buf.put_u8(0);
                buf.put_u64_le(*session as u64);
            }
            Event::Batch => buf.put_u8(1),
            Event::Deliver { to, frame } => {
                buf.put_u8(2);
                buf.put_u64_le(*to as u64);
                buf.put_u64_le(frame.len() as u64);
                buf.put_slice(frame);
            }
            Event::Crash { node } => {
                buf.put_u8(3);
                buf.put_u64_le(*node as u64);
            }
            Event::Restart { node } => {
                buf.put_u8(4);
                buf.put_u64_le(*node as u64);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, EngineError> {
        let short = |_| EngineError::Checkpoint("truncated event".into());
        match buf.try_get_u8().map_err(short)? {
            0 => Ok(Event::Arrival { session: buf.try_get_u64_le().map_err(short)? as usize }),
            1 => Ok(Event::Batch),
            2 => {
                let to = buf.try_get_u64_le().map_err(short)? as usize;
                let len = buf.try_get_u64_le().map_err(short)? as usize;
                let frame = buf.try_take_slice(len).map_err(short)?.to_vec();
                Ok(Event::Deliver { to, frame })
            }
            3 => Ok(Event::Crash { node: buf.try_get_u64_le().map_err(short)? as usize }),
            4 => Ok(Event::Restart { node: buf.try_get_u64_le().map_err(short)? as usize }),
            tag => Err(EngineError::Checkpoint(format!("unknown event tag {tag}"))),
        }
    }
}

/// What a completed run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Block-production ticks that fired.
    pub batches: u64,
    /// Blocks actually mined (batches with transactions).
    pub blocks: u64,
    /// Arrivals deferred by a full admission queue.
    pub backpressure: u64,
    /// Full ledger replays forced by tip divergence or crash recovery.
    pub heals: u64,
    /// Final chain height (archive).
    pub final_height: usize,
    /// Final state root (archive; all survivors match when `converged`).
    pub state_root: Hash256,
    /// Validators alive at the end of the run.
    pub survivors: Vec<usize>,
    /// Whether every survivor holds the archive's exact tip hash and
    /// state root — the bit-identity claim the DST harness asserts.
    pub converged: bool,
    /// Sessions whose every scripted transaction succeeded on-chain.
    pub sessions_settled: usize,
    /// Total hosted sessions.
    pub sessions_total: usize,
    /// Simulated ticks the run took.
    pub ticks: SimTime,
}

impl EngineReport {
    /// Whether every session settled and the survivors converged.
    pub fn fully_settled(&self) -> bool {
        self.converged && self.sessions_settled == self.sessions_total
    }
}

/// The persistent market engine. See the module docs for the design.
#[derive(Debug)]
pub struct Engine {
    seed: u64,
    config: EngineConfig,
    plans: Vec<SessionPlan>,
    allocations: Vec<(Address, Wei)>,
    contracts: Vec<Address>,
    net: Network,
    archive: Node,
    queue: EventQueue<Event>,
    admission: Bounded<Transaction>,
    faults: FaultPlan,
    arrivals: Vec<Poisson>,
    alive: Vec<bool>,
    cursors: Vec<usize>,
    arrival_k: Vec<u64>,
    next_proposer: usize,
    batches: u64,
    blocks: u64,
    backpressure: u64,
    heals: u64,
}

impl Engine {
    /// Boots the engine: builds every session plan (solving its game to
    /// equilibrium), boots the validator network and the archive node,
    /// deploys one contract per session on all of them, and schedules
    /// the initial arrival/batch/crash events.
    ///
    /// # Errors
    ///
    /// [`EngineError::Config`] for unusable configurations,
    /// [`EngineError::Session`] / [`EngineError::Contract`] /
    /// [`EngineError::Network`] for construction failures.
    pub fn new(config: EngineConfig, seed: u64) -> Result<Self, EngineError> {
        if config.validators == 0 {
            return Err(EngineError::Config("at least one validator".into()));
        }
        if config.sessions.is_empty() {
            return Err(EngineError::Config("at least one session".into()));
        }
        for (i, a) in config.sessions.iter().enumerate() {
            if config.sessions[..i].iter().any(|b| b.name == a.name) {
                return Err(EngineError::Config(format!(
                    "duplicate session name '{}'",
                    a.name
                )));
            }
        }

        let pool = Pool::new(config.workers.max(1));
        let mut plans = Vec::with_capacity(config.sessions.len());
        for spec in &config.sessions {
            plans.push(SessionPlan::build(spec.clone(), &pool)?);
        }

        let mut allocations: Vec<(Address, Wei)> = Vec::new();
        for plan in &plans {
            allocations.extend(plan.allocations.iter().copied());
        }

        let names: Vec<String> =
            (0..config.validators).map(|i| format!("validator-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut net = Network::with_limits(
            &name_refs,
            &allocations,
            WireLimits { max_frame_bytes: config.max_frame_bytes },
        );
        let mut archive = Node::new(&allocations);

        let mut contracts = Vec::with_capacity(plans.len());
        for plan in &plans {
            let proto = TradeFlContract::new(plan.params.clone())
                .map_err(|e| EngineError::Contract(e.to_string()))?;
            let archive_proto = proto.snapshot();
            let addr = net.deploy(Box::new(proto))?;
            let archive_addr = archive.deploy(archive_proto);
            if addr != archive_addr {
                return Err(EngineError::Internal("archive deployment diverged"));
            }
            contracts.push(addr);
        }

        let mut queue = EventQueue::new(substream(seed, STREAM_QUEUE));
        let faults = FaultPlan::new(substream(seed, STREAM_FAULTS), config.faults.clone());
        let arrivals: Vec<Poisson> = (0..plans.len())
            .map(|s| Poisson::new(seed, STREAM_ARRIVALS + s as u64, config.mean_arrival_gap))
            .collect();

        for (s, p) in arrivals.iter().enumerate() {
            queue.push(p.gap(0), Event::Arrival { session: s });
        }
        queue.push(config.batch_interval.max(1), Event::Batch);
        for crash in &faults.config().crashes {
            if crash.node < config.validators {
                queue.push(crash.at.max(1), Event::Crash { node: crash.node });
                queue.push(
                    crash.at.max(1).saturating_add(crash.down_for),
                    Event::Restart { node: crash.node },
                );
            }
        }

        let n_sessions = plans.len();
        Ok(Self {
            seed,
            alive: vec![true; config.validators],
            cursors: vec![0; n_sessions],
            arrival_k: vec![0; n_sessions],
            admission: Bounded::new(config.admission_capacity),
            next_proposer: 0,
            batches: 0,
            blocks: 0,
            backpressure: 0,
            heals: 0,
            config,
            plans,
            allocations,
            contracts,
            net,
            archive,
            queue,
            faults,
            arrivals,
        })
    }

    /// The engine's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The archive (source-of-truth) chain height.
    pub fn height(&self) -> usize {
        self.archive.chain().height()
    }

    /// Read access to the archive node (receipts, views, chain).
    pub fn archive(&self) -> &Node {
        &self.archive
    }

    /// Read access to the validator network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The deployed contract address for session `s`.
    pub fn contract(&self, s: usize) -> Option<Address> {
        self.contracts.get(s).copied()
    }

    /// Fresh contract prototypes with their expected addresses — what a
    /// rebooting validator redeploys before replaying the ledger.
    fn prototypes(&self) -> Result<Vec<(Address, Box<dyn Contract>)>, EngineError> {
        let mut out: Vec<(Address, Box<dyn Contract>)> =
            Vec::with_capacity(self.plans.len());
        for (plan, &addr) in self.plans.iter().zip(&self.contracts) {
            let proto = TradeFlContract::new(plan.params.clone())
                .map_err(|e| EngineError::Contract(e.to_string()))?;
            out.push((addr, Box::new(proto)));
        }
        Ok(out)
    }

    /// Rebuilds validator `i` from genesis and replays the entire
    /// archive through its wire path — crash recovery, and the repair
    /// path for a replica whose tip diverged.
    fn heal(&mut self, i: usize) -> Result<(), EngineError> {
        self.heals += 1;
        let protos = self.prototypes()?;
        self.net.restart_validator(i, &self.allocations, &protos)?;
        for block in self.archive.chain().blocks().iter().skip(1) {
            let frame = encode_block_bytes(block);
            if self.net.deliver_frame(i, &frame).is_err() {
                return Err(EngineError::Internal("canonical ledger replay rejected"));
            }
        }
        obs::counter_add("engine.heals", 1);
        Ok(())
    }

    /// Brings validator `i` up to the archive: replays missing heights
    /// through the wire path; if any canonical frame is rejected (or
    /// the tip still differs at full height), the replica's chain has
    /// diverged and it is healed by full replay.
    fn sync_node(&mut self, i: usize) -> Result<(), EngineError> {
        loop {
            let h = self.net.validator(i).node.chain().height();
            let ah = self.archive.chain().height();
            if h > ah {
                return self.heal(i);
            }
            if h == ah {
                break;
            }
            let Some(block) = self.archive.chain().blocks().get(h) else {
                return Err(EngineError::Internal("archive height out of range"));
            };
            let frame = encode_block_bytes(block);
            if self.net.deliver_frame(i, &frame).is_err() {
                return self.heal(i);
            }
        }
        if self.net.validator(i).node.chain().tip_hash() != self.archive.chain().tip_hash() {
            return self.heal(i);
        }
        Ok(())
    }

    /// Whether any session still has unmined work.
    fn work_remaining(&self) -> bool {
        !self.admission.is_empty()
            || self.cursors.iter().zip(&self.plans).any(|(&c, p)| c < p.len())
    }

    fn on_arrival(&mut self, s: usize) {
        if self.cursors[s] >= self.plans[s].len() {
            return;
        }
        let Some(tx) = self.plans[s].tx_at(self.cursors[s], self.contracts[s]) else {
            return;
        };
        match self.admission.push(tx) {
            Ok(()) => self.cursors[s] += 1,
            Err(_) => {
                self.backpressure += 1;
                obs::counter_add("engine.backpressure", 1);
            }
        }
        self.arrival_k[s] += 1;
        if self.cursors[s] < self.plans[s].len() {
            let gap = self.arrivals[s].gap(self.arrival_k[s]);
            self.queue.push_in(gap, Event::Arrival { session: s });
        }
    }

    fn on_batch(&mut self) -> Result<(), EngineError> {
        self.batches += 1;
        // Round-robin over live validators.
        let mut proposer = None;
        let v = self.config.validators;
        let mut p = self.next_proposer;
        for _ in 0..v {
            if self.alive[p] {
                proposer = Some(p);
                break;
            }
            p = (p + 1) % v;
        }
        if let Some(p) = proposer {
            self.next_proposer = (p + 1) % v;
            let mut txs = Vec::new();
            while let Some(tx) = self.admission.pop() {
                txs.push(tx);
            }
            if !txs.is_empty() {
                self.sync_node(p)?;
                let n_txs = txs.len() as u64;
                let frame = self.net.propose(p, txs)?;
                // Persist before gossip: the archive is the ledger.
                let Some(block) = self.net.validator(p).node.chain().blocks().last().cloned()
                else {
                    return Err(EngineError::Internal("proposer has no tip"));
                };
                if self.archive.apply_block(&block).is_err() {
                    return Err(EngineError::Internal("archive rejected proposer block"));
                }
                self.blocks += 1;
                obs::event(
                    obs::Subsystem::Engine,
                    "batch",
                    &[
                        ("height", (self.archive.chain().height() as u64).into()),
                        ("proposer", (p as u64).into()),
                        ("txs", n_txs.into()),
                    ],
                );
                for peer in 0..v {
                    if peer == p {
                        continue;
                    }
                    for d in self.faults.route(&frame) {
                        self.queue.push_in(d.delay, Event::Deliver { to: peer, frame: d.frame });
                    }
                }
            }
        }
        if self.work_remaining() {
            self.queue.push_in(self.config.batch_interval.max(1), Event::Batch);
        }
        Ok(())
    }

    fn on_deliver(&mut self, to: usize, frame: &[u8]) -> Result<(), EngineError> {
        if !self.alive[to] {
            obs::counter_add("engine.frames_to_dead", 1);
            return Ok(());
        }
        match self.net.deliver_frame(to, frame) {
            Ok(()) => Ok(()),
            Err(FrameError::Apply(BlockApplyError::WrongHeight { got, expected }))
                if got > expected =>
            {
                // The replica fell behind (dropped/reordered frames):
                // pull the gap from the ledger.
                self.sync_node(to)
            }
            Err(FrameError::Apply(BlockApplyError::WrongHeight { .. })) => {
                // Stale duplicate of a height the replica already holds.
                obs::counter_add("engine.frames_stale", 1);
                Ok(())
            }
            Err(FrameError::Decode(_)) | Err(FrameError::Oversize { .. }) => {
                // Mutated junk; the content reaches the replica later by
                // ledger sync.
                obs::counter_add("engine.frames_rejected", 1);
                Ok(())
            }
            Err(FrameError::Apply(_)) => {
                // Parent/root mismatch: either a mutated frame or a
                // diverged tip — syncing repairs both.
                obs::counter_add("engine.frames_rejected", 1);
                self.sync_node(to)
            }
        }
    }

    fn on_crash(&mut self, node: usize) {
        if node < self.alive.len() && self.alive[node] {
            self.alive[node] = false;
            obs::event(obs::Subsystem::Engine, "crash", &[("node", (node as u64).into())]);
        }
    }

    fn on_restart(&mut self, node: usize) -> Result<(), EngineError> {
        if node < self.alive.len() && !self.alive[node] {
            self.alive[node] = true;
            // Reboot from genesis; recovery is a pure ledger replay.
            self.heal(node)?;
            obs::event(
                obs::Subsystem::Engine,
                "restart",
                &[
                    ("node", (node as u64).into()),
                    ("height", (self.net.validator(node).node.chain().height() as u64).into()),
                ],
            );
        }
        Ok(())
    }

    /// Processes a single event. `Ok(true)` while events remain.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let Some((_, event)) = self.queue.pop() else {
            return Ok(false);
        };
        let stall_bound = self.config.horizon.max(1 << 10).saturating_mul(256);
        if self.queue.now() > stall_bound {
            return Err(EngineError::Stalled { now: self.queue.now() });
        }
        match event {
            Event::Arrival { session } => self.on_arrival(session),
            Event::Batch => self.on_batch()?,
            Event::Deliver { to, frame } => self.on_deliver(to, &frame)?,
            Event::Crash { node } => self.on_crash(node),
            Event::Restart { node } => self.on_restart(node)?,
        }
        Ok(!self.queue.is_empty())
    }

    /// Runs the simulation to completion: drains the event queue, then
    /// brings every surviving replica up to the ledger and reports.
    ///
    /// # Errors
    ///
    /// [`EngineError::Stalled`] if the stall guard trips;
    /// [`EngineError::Network`] / [`EngineError::Internal`] on
    /// consistency failures (bugs, not fault injection — injected
    /// faults surface as rejections and heals, never errors).
    pub fn run(&mut self) -> Result<EngineReport, EngineError> {
        while self.step()? {}
        self.report()
    }

    /// Final convergence check and summary (also valid mid-run, e.g.
    /// right after a checkpoint restore).
    ///
    /// # Errors
    ///
    /// Propagates sync failures.
    pub fn report(&mut self) -> Result<EngineReport, EngineError> {
        let survivors: Vec<usize> =
            (0..self.config.validators).filter(|&i| self.alive[i]).collect();
        for &i in &survivors {
            self.sync_node(i)?;
        }
        let tip = self.archive.chain().tip_hash();
        let root = self.archive.state().root();
        let converged = survivors.iter().all(|&i| {
            let node = &self.net.validator(i).node;
            node.chain().tip_hash() == tip && node.state().root() == root
        }) && self.net.converged_among(&survivors);

        let mut sessions_settled = 0;
        for (s, plan) in self.plans.iter().enumerate() {
            let all_ok = (0..plan.len()).all(|k| {
                plan.tx_at(k, self.contracts[s])
                    .and_then(|tx| self.archive.receipt(tx.hash()).cloned())
                    .is_some_and(|r| matches!(r.status, ExecStatus::Success))
            });
            if all_ok {
                sessions_settled += 1;
            }
        }

        Ok(EngineReport {
            batches: self.batches,
            blocks: self.blocks,
            backpressure: self.backpressure,
            heals: self.heals,
            final_height: self.archive.chain().height(),
            state_root: root,
            survivors,
            converged,
            sessions_settled,
            sessions_total: self.plans.len(),
            ticks: self.queue.now(),
        })
    }

    /// Serializes the live engine: simulation counters, session
    /// cursors, admission queue, pending events, and the full ledger
    /// through the chain export codec. Restoring with
    /// [`Engine::restore`] resumes bit-identically — every stochastic
    /// stream is a pure function of `(seed, counter)`, and all counters
    /// are here.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u8(CHECKPOINT_VERSION);
        buf.put_u64_le(self.seed);
        buf.put_u64_le(self.queue.now());
        buf.put_u64_le(self.queue.next_seq());
        buf.put_u64_le(self.next_proposer as u64);
        buf.put_u64_le(self.batches);
        buf.put_u64_le(self.blocks);
        buf.put_u64_le(self.backpressure);
        buf.put_u64_le(self.heals);
        buf.put_u64_le(self.faults.decisions());
        buf.put_u64_le(self.alive.len() as u64);
        for &a in &self.alive {
            buf.put_u8(a as u8);
        }
        buf.put_u64_le(self.cursors.len() as u64);
        for &c in &self.cursors {
            buf.put_u64_le(c as u64);
        }
        buf.put_u64_le(self.arrival_k.len() as u64);
        for &k in &self.arrival_k {
            buf.put_u64_le(k);
        }
        buf.put_u64_le(self.admission.len() as u64);
        for tx in self.admission.iter() {
            let bytes = encode_tx_bytes(tx);
            buf.put_u64_le(bytes.len() as u64);
            buf.put_slice(&bytes);
        }
        let pending = self.queue.pending();
        buf.put_u64_le(pending.len() as u64);
        for (time, _, seq, event) in pending {
            buf.put_u64_le(time);
            buf.put_u64_le(seq);
            event.encode(&mut buf);
        }
        let chain = encode_chain(self.archive.chain());
        buf.put_u64_le(chain.len() as u64);
        buf.put_slice(&chain);
        buf.to_vec()
    }

    /// Rebuilds a live engine from a checkpoint: boots fresh (same
    /// config and seed), imports the ledger through the chain codec
    /// with full re-execution validation, replays every live replica up
    /// to it, and restores the simulation counters and pending events.
    ///
    /// # Errors
    ///
    /// [`EngineError::Checkpoint`] / [`EngineError::Codec`] on
    /// malformed bytes or config mismatch.
    pub fn restore(
        config: EngineConfig,
        seed: u64,
        checkpoint: &[u8],
    ) -> Result<Self, EngineError> {
        let mut engine = Engine::new(config, seed)?;
        let buf = &mut &checkpoint[..];
        let short = |_| EngineError::Checkpoint("truncated checkpoint".into());

        let version = buf.try_get_u8().map_err(short)?;
        if version != CHECKPOINT_VERSION {
            return Err(EngineError::Checkpoint(format!(
                "unknown checkpoint version {version}"
            )));
        }
        let ck_seed = buf.try_get_u64_le().map_err(short)?;
        if ck_seed != seed {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint was taken under seed {ck_seed}, not {seed}"
            )));
        }
        let now = buf.try_get_u64_le().map_err(short)?;
        let next_seq = buf.try_get_u64_le().map_err(short)?;
        engine.next_proposer = buf.try_get_u64_le().map_err(short)? as usize;
        engine.batches = buf.try_get_u64_le().map_err(short)?;
        engine.blocks = buf.try_get_u64_le().map_err(short)?;
        engine.backpressure = buf.try_get_u64_le().map_err(short)?;
        engine.heals = buf.try_get_u64_le().map_err(short)?;
        let decisions = buf.try_get_u64_le().map_err(short)?;
        engine.faults.restore_decisions(decisions);

        let n_alive = buf.try_get_u64_le().map_err(short)? as usize;
        if n_alive != engine.alive.len() {
            return Err(EngineError::Checkpoint("validator count mismatch".into()));
        }
        for a in engine.alive.iter_mut() {
            *a = buf.try_get_u8().map_err(short)? != 0;
        }
        let n_cursors = buf.try_get_u64_le().map_err(short)? as usize;
        if n_cursors != engine.cursors.len() {
            return Err(EngineError::Checkpoint("session count mismatch".into()));
        }
        for c in engine.cursors.iter_mut() {
            *c = buf.try_get_u64_le().map_err(short)? as usize;
        }
        let n_k = buf.try_get_u64_le().map_err(short)? as usize;
        if n_k != engine.arrival_k.len() {
            return Err(EngineError::Checkpoint("session count mismatch".into()));
        }
        for k in engine.arrival_k.iter_mut() {
            *k = buf.try_get_u64_le().map_err(short)?;
        }

        let n_admission = buf.try_get_u64_le().map_err(short)? as usize;
        engine.admission = Bounded::new(engine.config.admission_capacity);
        for _ in 0..n_admission {
            let len = buf.try_get_u64_le().map_err(short)? as usize;
            let bytes = buf.try_take_slice(len).map_err(short)?;
            let tx = decode_tx_bytes(bytes)?;
            if engine.admission.push(tx).is_err() {
                return Err(EngineError::Checkpoint(
                    "admission queue exceeds configured capacity".into(),
                ));
            }
        }

        // A forged checkpoint can declare any count; bound it by the
        // bytes actually present (each entry is ≥ time(8) + seq(8) +
        // event tag(1)) before the count sizes an allocation.
        let n_pending = bounded_count(
            buf.try_get_u64_le().map_err(short)? as usize,
            buf.remaining(),
            PENDING_ENTRY_MIN_BYTES,
        )?;
        let mut entries = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let time = buf.try_get_u64_le().map_err(short)?;
            let seq = buf.try_get_u64_le().map_err(short)?;
            let event = Event::decode(buf)?;
            entries.push((time, seq, event));
        }
        engine.queue =
            EventQueue::restore(substream(seed, STREAM_QUEUE), now, next_seq, entries);

        let chain_len = buf.try_get_u64_le().map_err(short)? as usize;
        let chain_bytes = buf.try_take_slice(chain_len).map_err(short)?.to_vec();
        if !buf.is_empty() {
            return Err(EngineError::Checkpoint("trailing bytes".into()));
        }
        // Import through the chain codec, then replay into the fresh
        // archive with full re-execution validation — a forged
        // checkpoint cannot produce a diverging engine.
        let chain = decode_chain(&chain_bytes)?;
        let blocks = chain.blocks();
        let Some(genesis) = blocks.first() else {
            return Err(EngineError::Checkpoint("empty chain".into()));
        };
        if engine.archive.chain().tip_hash() != genesis.hash() {
            return Err(EngineError::Checkpoint(
                "checkpoint genesis does not match this config".into(),
            ));
        }
        for block in blocks.iter().skip(1) {
            if engine.archive.apply_block(block).is_err() {
                return Err(EngineError::Checkpoint(
                    "ledger replay failed validation".into(),
                ));
            }
        }
        // Live replicas resume at the ledger; dead ones stay at genesis
        // until their Restart event heals them.
        for i in 0..engine.config.validators {
            if engine.alive[i] {
                engine.sync_node(i)?;
            }
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EngineConfig {
        EngineConfig {
            validators: 3,
            sessions: vec![SessionSpec { name: "m0".into(), orgs: 3, seed: 1 }],
            batch_interval: 5,
            mean_arrival_gap: 2.0,
            admission_capacity: 8,
            horizon: 512,
            faults: FaultConfig::none(),
            max_frame_bytes: WireLimits::DEFAULT_MAX_FRAME_BYTES,
            workers: 1,
        }
    }

    #[test]
    fn fault_free_run_settles_and_converges() {
        let mut engine = Engine::new(tiny_config(), 42).unwrap();
        let report = engine.run().unwrap();
        assert!(report.fully_settled(), "{report:?}");
        assert_eq!(report.survivors, vec![0, 1, 2]);
        assert!(report.blocks > 0);
        assert!(report.final_height > 1);
    }

    #[test]
    fn runs_are_bit_deterministic() {
        let run = |seed| {
            let mut e = Engine::new(tiny_config(), seed).unwrap();
            e.run().unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same everything");
        let c = run(0xDEAD_BEEF);
        assert_ne!(
            (a.ticks, a.batches, a.blocks, a.backpressure),
            (c.ticks, c.batches, c.blocks, c.backpressure),
            "different seeds explore different schedules"
        );
    }

    #[test]
    fn two_sessions_share_one_chain() {
        let mut config = tiny_config();
        config.sessions.push(SessionSpec { name: "m1".into(), orgs: 2, seed: 9 });
        let mut engine = Engine::new(config, 3).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.sessions_total, 2);
        assert!(report.fully_settled(), "{report:?}");
    }

    #[test]
    fn tiny_admission_queues_defer_arrivals_but_still_settle() {
        let mut config = tiny_config();
        config.admission_capacity = 1;
        config.batch_interval = 20;
        let mut engine = Engine::new(config, 4).unwrap();
        let report = engine.run().unwrap();
        assert!(report.backpressure > 0, "capacity 1 must defer arrivals");
        assert!(report.fully_settled(), "{report:?}");
    }

    #[test]
    fn duplicate_session_names_are_rejected() {
        let mut config = tiny_config();
        config.sessions.push(config.sessions[0].clone());
        assert!(matches!(Engine::new(config, 0), Err(EngineError::Config(_))));
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let seed = 11;
        let mut uninterrupted = Engine::new(tiny_config(), seed).unwrap();
        let expected = uninterrupted.run().unwrap();

        let mut engine = Engine::new(tiny_config(), seed).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let bytes = engine.checkpoint();
        let mut restored = Engine::restore(tiny_config(), seed, &bytes).unwrap();
        let resumed = restored.run().unwrap();
        assert_eq!(resumed.state_root, expected.state_root);
        assert_eq!(resumed.final_height, expected.final_height);
        assert_eq!(resumed.blocks, expected.blocks);
        assert!(resumed.fully_settled());
    }

    #[test]
    fn checkpoints_reject_wrong_seed_and_garbage() {
        let engine = Engine::new(tiny_config(), 5).unwrap();
        let bytes = engine.checkpoint();
        assert!(matches!(
            Engine::restore(tiny_config(), 6, &bytes),
            Err(EngineError::Checkpoint(_))
        ));
        assert!(Engine::restore(tiny_config(), 5, &bytes[..bytes.len() / 2]).is_err());
        assert!(Engine::restore(tiny_config(), 5, &[0xff; 40]).is_err());
    }

    /// Byte offset of the pending-event count inside a checkpoint,
    /// found by walking the same section order [`Engine::checkpoint`]
    /// writes (fixed counters, then the alive/cursors/arrival_k/
    /// admission variable sections).
    fn pending_count_offset(bytes: &[u8]) -> usize {
        let u64_at = |off: usize| {
            u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()) as usize
        };
        let mut off = 1 + 9 * 8; // version + nine fixed u64 counters
        let alive = u64_at(off);
        off += 8 + alive; // one u8 per live validator
        let cursors = u64_at(off);
        off += 8 + 8 * cursors;
        let arrival_k = u64_at(off);
        off += 8 + 8 * arrival_k;
        let admission = u64_at(off);
        off += 8;
        for _ in 0..admission {
            let len = u64_at(off);
            off += 8 + len;
        }
        off
    }

    /// Byzantine oversize regression: a checkpoint whose pending-event
    /// count claims u64::MAX entries (far more than the bytes behind
    /// it) must be rejected up front by the `bounded_count` validation
    /// — not trusted into `Vec::with_capacity`, where the forged count
    /// becomes a forged-size allocation.
    #[test]
    fn forged_pending_count_is_rejected_before_allocating() {
        let mut engine = Engine::new(tiny_config(), 5).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let mut bytes = engine.checkpoint();
        let off = pending_count_offset(&bytes);
        // Sanity: the walk landed on the real count (restore of the
        // unmodified bytes still works after a round-trip re-read).
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_ok());
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_err());
    }
}
