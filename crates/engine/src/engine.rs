//! The deterministic event-loop executor.
//!
//! One [`Engine`] hosts a set of validator replicas (a
//! [`tradefl_ledger::network::Network`]) plus any number of concurrent
//! market sessions ([`crate::session`]), and drives everything from a
//! single totally ordered event queue over simulated time:
//!
//! * **Arrival** — a session's next scripted transaction reaches the
//!   admission queue (bounded: a full queue defers the arrival, which
//!   retries at the session's next Poisson tick — backpressure).
//! * **Batch** — on a fixed cadence, a proposer is *elected* over the
//!   live validators (`live[term % live.len()]`, a pure function of
//!   the election term and the live set), catches up to its freshest
//!   peer by pull, executes the admission queue into a block, and the
//!   encoded frame is gossiped to every peer through seeded fault
//!   injection (drop/duplicate/delay/truncate/corrupt). A seeded
//!   [`ByzantinePlan`] may schedule the proposer to *lie*: the gossiped
//!   frame encodes a mutated block, honest replicas refuse it on
//!   re-execution, the liar (which forked itself) is rebuilt from its
//!   peers, and the election passes to the next term's proposer — the
//!   round's transactions are retained and re-mined honestly.
//! * **Deliver** — a gossiped frame (possibly mutated) hits a replica's
//!   untrusted byte path
//!   ([`tradefl_ledger::network::Network::deliver_frame`]). Rejections
//!   are expected; a replica that fell behind or diverged repairs
//!   itself by peer-to-peer catch-up (below).
//! * **Crash / Restart** — a node dies (loses all in-memory state) and
//!   later reboots from genesis, recovering purely by pulling the
//!   ledger from its live peers — the recovery invariant the DST
//!   harness pins. Transactions that were mined only on a replica that
//!   then crashed are detected at the next batch tick (no surviving
//!   replica holds their receipts) and re-queued, each exactly once.
//!
//! ## Gossip-only catch-up: peers are the source of truth
//!
//! There is no trusted node. A replica that fell behind pulls each
//! missing height from the *freshest live peer*
//! ([`tradefl_ledger::network::Network::frame_at`]); every pulled frame
//! is routed through the same seeded fault plan as gossip and
//! re-validated by full re-execution on delivery, so a corrupt or
//! lying response is refused and the puller falls back to the next
//! peer. A replica whose tip diverged from the canonical chain (the
//! freshest live replica's, lowest index on ties) is healed: rebuilt
//! from genesis and re-pulled from its peers.
//!
//! The engine still owns a non-validator *archive node*, but it is a
//! passive observer demoted to two jobs: [`Engine::checkpoint`] /
//! [`Engine::restore`] (the canonical chain is serialized through
//! [`tradefl_ledger::codec::encode_chain`] and re-validated block by
//! block on restore) and final reporting when no validator survived.
//! During a run it stays at genesis — the DST suite asserts that.
//! Since every stochastic stream (arrivals, tiebreaks, fault and
//! Byzantine decisions) is a pure function of `(seed, counter)`,
//! [`Engine::restore`] resumes bit-identically.

use crate::session::{SessionPlan, SessionSpec};
use std::fmt;
use tradefl_ledger::chain::Block;
use tradefl_ledger::codec::{
    bounded_count, decode_chain, decode_tx_bytes, encode_block_bytes, encode_chain,
    encode_tx_bytes, CodecError,
};
use tradefl_ledger::contract::Contract;
use tradefl_ledger::network::{FrameError, Network, NetworkError, WireLimits};
use tradefl_ledger::node::{BlockApplyError, Node};
use tradefl_ledger::tradefl_contract::TradeFlContract;
use tradefl_ledger::tx::{ExecStatus, Transaction};
use tradefl_ledger::types::{Address, Hash256, Wei};
use tradefl_runtime::codec::{Buf, BytesMut};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::{
    ByzantineConfig, ByzantinePlan, FaultConfig, FaultPlan, Tamper, TamperKind,
};
use tradefl_runtime::sim::{substream, Bounded, EventQueue, Poisson, SimTime};
use tradefl_runtime::sync::pool::Pool;

/// Substream labels (one user-facing seed fans out into decorrelated
/// streams for each randomness consumer).
const STREAM_QUEUE: u64 = 0xE0;
const STREAM_FAULTS: u64 = 0xE1;
const STREAM_BYZANTINE: u64 = 0xE2;
const STREAM_ARRIVALS: u64 = 0xA0;

/// Checkpoint format version. v2 replaced the archive-centric v1
/// layout: the round-robin cursor became the election term, the
/// Byzantine decision counter and the requeue/in-flight transaction
/// sections were added, and per-replica heights let restore rebuild
/// each replica at its exact checkpointed position instead of snapping
/// everyone to the archive tip. v3 switched every counter and length
/// prefix from fixed `u64_le` to LEB128 varints (the embedded chain
/// rides the ledger codec, itself varint since its v2).
const CHECKPOINT_VERSION: u8 = 3;

/// Smallest possible encoding of one pending-event queue entry:
/// time varint (1) + seq varint (1) + event tag (1). Bounds the
/// declared entry count in [`Engine::restore`] against the bytes
/// actually present.
const PENDING_ENTRY_MIN_BYTES: usize = 3;

/// Smallest possible encoding of one length-prefixed transaction in
/// the requeue/mined checkpoint sections: length varint (1) + at least
/// one transaction byte.
const TX_ENTRY_MIN_BYTES: usize = 2;

/// Everything the engine simulates, minus the seed.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of validator replicas (≥ 1).
    pub validators: usize,
    /// The market sessions to host concurrently (names must be unique).
    pub sessions: Vec<SessionSpec>,
    /// Ticks between block-production attempts.
    pub batch_interval: SimTime,
    /// Mean ticks between transaction arrivals per session (Poisson
    /// open-loop generator).
    pub mean_arrival_gap: f64,
    /// Admission queue capacity — arrivals beyond it are deferred
    /// (backpressure), retrying at the session's next arrival tick.
    pub admission_capacity: usize,
    /// Nominal run length in ticks: scales seeded fault schedules and
    /// the stall guard. The engine runs to completion regardless.
    pub horizon: SimTime,
    /// Fault injection applied to every gossiped frame, plus the
    /// kill-and-restart schedule.
    pub faults: FaultConfig,
    /// Byzantine-proposer schedule: with what probability an elected
    /// proposer gossips a tampered block instead of its honest one.
    pub byzantine: ByzantineConfig,
    /// Wire-path frame size limit for every replica.
    pub max_frame_bytes: usize,
    /// Worker threads for the equilibrium solves (bit-identical results
    /// for any count, per the workspace determinism contract).
    pub workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            validators: 3,
            sessions: vec![SessionSpec { name: "market-0".into(), orgs: 3, seed: 0 }],
            batch_interval: 8,
            mean_arrival_gap: 3.0,
            admission_capacity: 16,
            horizon: 1 << 10,
            faults: FaultConfig::none(),
            byzantine: ByzantineConfig::none(),
            max_frame_bytes: WireLimits::DEFAULT_MAX_FRAME_BYTES,
            workers: 1,
        }
    }
}

/// Errors from engine construction, execution, or restore.
#[derive(Debug)]
pub enum EngineError {
    /// The configuration is unusable as given.
    Config(String),
    /// A session plan could not be built.
    Session {
        /// The offending session's name.
        session: String,
        /// What went wrong.
        reason: String,
    },
    /// Contract construction or deployment failed.
    Contract(String),
    /// A network operation failed.
    Network(NetworkError),
    /// Chain or checkpoint bytes failed to decode.
    Codec(CodecError),
    /// A checkpoint was malformed or inconsistent with the config.
    Checkpoint(String),
    /// The simulation exceeded its stall guard without completing.
    Stalled {
        /// Simulated time when the guard tripped.
        now: SimTime,
    },
    /// An internal consistency failure (a bug, not bad input).
    Internal(&'static str),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Config(why) => write!(f, "bad engine config: {why}"),
            EngineError::Session { session, reason } => {
                write!(f, "session '{session}': {reason}")
            }
            EngineError::Contract(why) => write!(f, "contract error: {why}"),
            EngineError::Network(e) => write!(f, "network error: {e}"),
            EngineError::Codec(e) => write!(f, "codec error: {e}"),
            EngineError::Checkpoint(why) => write!(f, "bad checkpoint: {why}"),
            EngineError::Stalled { now } => {
                write!(f, "simulation stalled at tick {now} without completing")
            }
            EngineError::Internal(what) => write!(f, "internal engine error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<NetworkError> for EngineError {
    fn from(e: NetworkError) -> Self {
        EngineError::Network(e)
    }
}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::Codec(e)
    }
}

/// One simulated occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    /// Session `session`'s next scripted transaction arrives.
    Arrival {
        /// Session index.
        session: usize,
    },
    /// Block-production tick.
    Batch,
    /// A gossiped frame reaches replica `to`.
    Deliver {
        /// Receiving validator.
        to: usize,
        /// Frame bytes (possibly fault-mutated).
        frame: Vec<u8>,
    },
    /// Validator `node` dies.
    Crash {
        /// The node that dies.
        node: usize,
    },
    /// Validator `node` reboots (recovery pulls the ledger from live
    /// peers through the fault plan).
    Restart {
        /// The node that reboots.
        node: usize,
    },
}

impl Event {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Event::Arrival { session } => {
                buf.put_u8(0);
                buf.put_uvarint(*session as u64);
            }
            Event::Batch => buf.put_u8(1),
            Event::Deliver { to, frame } => {
                buf.put_u8(2);
                buf.put_uvarint(*to as u64);
                buf.put_varint_slice(frame);
            }
            Event::Crash { node } => {
                buf.put_u8(3);
                buf.put_uvarint(*node as u64);
            }
            Event::Restart { node } => {
                buf.put_u8(4);
                buf.put_uvarint(*node as u64);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self, EngineError> {
        let short = |_| EngineError::Checkpoint("truncated event".into());
        match buf.try_get_u8().map_err(short)? {
            0 => Ok(Event::Arrival { session: buf.try_get_uvarint().map_err(short)? as usize }),
            1 => Ok(Event::Batch),
            2 => {
                let to = buf.try_get_uvarint().map_err(short)? as usize;
                // The declared frame length is checked against the
                // bytes actually remaining before the zero-copy slice.
                let frame = buf
                    .try_get_varint_slice(buf.remaining() as u64)
                    .map_err(short)?
                    .to_vec();
                Ok(Event::Deliver { to, frame })
            }
            3 => Ok(Event::Crash { node: buf.try_get_uvarint().map_err(short)? as usize }),
            4 => Ok(Event::Restart { node: buf.try_get_uvarint().map_err(short)? as usize }),
            tag => Err(EngineError::Checkpoint(format!("unknown event tag {tag}"))),
        }
    }
}

/// What a completed run reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Block-production ticks that fired.
    pub batches: u64,
    /// Blocks actually mined (batches with transactions).
    pub blocks: u64,
    /// Arrivals deferred by a full admission queue.
    pub backpressure: u64,
    /// Genesis rebuilds forced by tip divergence, crash recovery, or a
    /// proposer that lied (and forked itself doing so).
    pub heals: u64,
    /// Rounds where the elected proposer gossiped a tampered block.
    pub byzantine_rounds: u64,
    /// Transactions re-queued because no surviving replica held their
    /// receipt after the round that mined them (crashed or lying
    /// proposer) — each re-mined without duplication.
    pub requeues: u64,
    /// Final chain height (canonical: the freshest surviving replica;
    /// the archive's stale observer view if nobody survived).
    pub final_height: usize,
    /// Final state root (canonical; all survivors match when
    /// `converged`).
    pub state_root: Hash256,
    /// Validators alive at the end of the run.
    pub survivors: Vec<usize>,
    /// Every validator died and no restart is pending: there is no
    /// state left to converge, so `converged` is explicitly false
    /// rather than vacuously true.
    pub no_survivors: bool,
    /// Whether every survivor holds the canonical tip hash and state
    /// root — the bit-identity claim the DST harness asserts. Requires
    /// at least one survivor: zero-survivor convergence is vacuous and
    /// reports false (see `no_survivors`).
    pub converged: bool,
    /// Sessions whose every scripted transaction succeeded on-chain.
    pub sessions_settled: usize,
    /// Total hosted sessions.
    pub sessions_total: usize,
    /// Simulated ticks the run took.
    pub ticks: SimTime,
}

impl EngineReport {
    /// Whether every session settled and the survivors converged.
    pub fn fully_settled(&self) -> bool {
        self.converged && self.sessions_settled == self.sessions_total
    }
}

/// The persistent market engine. See the module docs for the design.
#[derive(Debug)]
pub struct Engine {
    seed: u64,
    config: EngineConfig,
    plans: Vec<SessionPlan>,
    allocations: Vec<(Address, Wei)>,
    contracts: Vec<Address>,
    net: Network,
    archive: Node,
    queue: EventQueue<Event>,
    admission: Bounded<Transaction>,
    faults: FaultPlan,
    byzantine: ByzantinePlan,
    arrivals: Vec<Poisson>,
    alive: Vec<bool>,
    cursors: Vec<usize>,
    arrival_k: Vec<u64>,
    /// Election term: the next proposer is `live[term % live.len()]`
    /// over the ascending live validator set — a pure function of
    /// `(term, alive)`, so restarts can neither skip nor double-count
    /// anyone and checkpoint/restore replays elections exactly.
    term: u64,
    /// Transactions awaiting re-mining: a batch tick found them missing
    /// from the canonical chain (their round was lost with a crashed or
    /// lying proposer).
    requeue: Vec<Transaction>,
    /// Every transaction ever handed to an honest proposer, retained
    /// (they are the sessions' finite scripts) so that any round lost
    /// with its holder — even one committed many rounds ago whose sole
    /// replica crashed — can be detected by receipt absence on the
    /// canonical chain and re-mined.
    mined: Vec<Transaction>,
    /// Restart events still pending in the queue — lets the engine
    /// detect a doomed network (everyone dead, nobody coming back).
    pending_restarts: usize,
    /// Whether a Batch event is in the queue — a crash that orphans
    /// mined transactions must be able to restart the batch cadence
    /// without double-scheduling it.
    batch_pending: bool,
    batches: u64,
    blocks: u64,
    backpressure: u64,
    heals: u64,
    byzantine_rounds: u64,
    requeues: u64,
}

impl Engine {
    /// Boots the engine: builds every session plan (solving its game to
    /// equilibrium), boots the validator network and the archive node,
    /// deploys one contract per session on all of them, and schedules
    /// the initial arrival/batch/crash events.
    ///
    /// # Errors
    ///
    /// [`EngineError::Config`] for unusable configurations,
    /// [`EngineError::Session`] / [`EngineError::Contract`] /
    /// [`EngineError::Network`] for construction failures.
    pub fn new(config: EngineConfig, seed: u64) -> Result<Self, EngineError> {
        if config.validators == 0 {
            return Err(EngineError::Config("at least one validator".into()));
        }
        if config.sessions.is_empty() {
            return Err(EngineError::Config("at least one session".into()));
        }
        for (i, a) in config.sessions.iter().enumerate() {
            if config.sessions[..i].iter().any(|b| b.name == a.name) {
                return Err(EngineError::Config(format!(
                    "duplicate session name '{}'",
                    a.name
                )));
            }
        }

        let pool = Pool::new(config.workers.max(1));
        let mut plans = Vec::with_capacity(config.sessions.len());
        for spec in &config.sessions {
            plans.push(SessionPlan::build(spec.clone(), &pool)?);
        }

        let mut allocations: Vec<(Address, Wei)> = Vec::new();
        for plan in &plans {
            allocations.extend(plan.allocations.iter().copied());
        }

        let names: Vec<String> =
            (0..config.validators).map(|i| format!("validator-{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut net = Network::with_limits(
            &name_refs,
            &allocations,
            WireLimits { max_frame_bytes: config.max_frame_bytes },
        );
        let mut archive = Node::new(&allocations);

        let mut contracts = Vec::with_capacity(plans.len());
        for plan in &plans {
            let proto = TradeFlContract::new(plan.params.clone())
                .map_err(|e| EngineError::Contract(e.to_string()))?;
            let archive_proto = proto.snapshot();
            let addr = net.deploy(Box::new(proto))?;
            let archive_addr = archive.deploy(archive_proto);
            if addr != archive_addr {
                return Err(EngineError::Internal("archive deployment diverged"));
            }
            contracts.push(addr);
        }

        let mut queue = EventQueue::new(substream(seed, STREAM_QUEUE));
        let faults = FaultPlan::new(substream(seed, STREAM_FAULTS), config.faults.clone());
        let byzantine =
            ByzantinePlan::new(substream(seed, STREAM_BYZANTINE), config.byzantine.clone());
        let arrivals: Vec<Poisson> = (0..plans.len())
            .map(|s| Poisson::new(seed, STREAM_ARRIVALS + s as u64, config.mean_arrival_gap))
            .collect();

        for (s, p) in arrivals.iter().enumerate() {
            queue.push(p.gap(0), Event::Arrival { session: s });
        }
        queue.push(config.batch_interval.max(1), Event::Batch);
        let mut pending_restarts = 0;
        for crash in &faults.config().crashes {
            if crash.node < config.validators {
                queue.push(crash.at.max(1), Event::Crash { node: crash.node });
                if crash.restarts() {
                    queue.push(
                        crash.at.max(1).saturating_add(crash.down_for),
                        Event::Restart { node: crash.node },
                    );
                    pending_restarts += 1;
                }
            }
        }

        let n_sessions = plans.len();
        Ok(Self {
            seed,
            alive: vec![true; config.validators],
            cursors: vec![0; n_sessions],
            arrival_k: vec![0; n_sessions],
            admission: Bounded::new(config.admission_capacity),
            term: 0,
            requeue: Vec::new(),
            mined: Vec::new(),
            pending_restarts,
            batch_pending: true,
            batches: 0,
            blocks: 0,
            backpressure: 0,
            heals: 0,
            byzantine_rounds: 0,
            requeues: 0,
            config,
            plans,
            allocations,
            contracts,
            net,
            archive,
            queue,
            faults,
            byzantine,
            arrivals,
        })
    }

    /// The engine's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// The canonical chain height: the freshest live replica's, or the
    /// archive's stale observer view when nobody is alive.
    pub fn height(&self) -> usize {
        match self.canonical() {
            Some(c) => self.height_of(c),
            None => self.archive.chain().height(),
        }
    }

    /// Read access to the archive node — a passive observer used only
    /// for checkpoint/restore and as the reporting fallback when no
    /// validator survived. During a run it stays at genesis.
    pub fn archive(&self) -> &Node {
        &self.archive
    }

    /// Read access to the validator network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The deployed contract address for session `s`.
    pub fn contract(&self, s: usize) -> Option<Address> {
        self.contracts.get(s).copied()
    }

    /// The election term: how many proposal attempts have been made.
    /// Checkpoint/restore must carry it exactly — the DST harness
    /// asserts a resumed run ends on the uninterrupted run's term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The resolved plan for session `s` (the DST harness audits its
    /// scripted transactions against the canonical chain).
    pub fn session_plan(&self, s: usize) -> Option<&SessionPlan> {
        self.plans.get(s)
    }

    /// Fresh contract prototypes with their expected addresses — what a
    /// rebooting validator redeploys before replaying the ledger.
    fn prototypes(&self) -> Result<Vec<(Address, Box<dyn Contract>)>, EngineError> {
        let mut out: Vec<(Address, Box<dyn Contract>)> =
            Vec::with_capacity(self.plans.len());
        for (plan, &addr) in self.plans.iter().zip(&self.contracts) {
            let proto = TradeFlContract::new(plan.params.clone())
                .map_err(|e| EngineError::Contract(e.to_string()))?;
            out.push((addr, Box::new(proto)));
        }
        Ok(out)
    }

    /// Chain height of replica `i`.
    fn height_of(&self, i: usize) -> usize {
        self.net.validator(i).node.chain().height()
    }

    /// The canonical replica: the freshest live validator, lowest
    /// index on ties. `None` when every validator is dead.
    fn canonical(&self) -> Option<usize> {
        (0..self.config.validators).filter(|&i| self.alive[i]).fold(None, |best, i| {
            match best {
                Some(b) if self.height_of(i) <= self.height_of(b) => Some(b),
                _ => Some(i),
            }
        })
    }

    /// Live peers of `i`, freshest first (stable sort: index order
    /// breaks ties deterministically).
    fn peers_by_freshness(&self, i: usize) -> Vec<usize> {
        let mut peers: Vec<usize> = (0..self.config.validators)
            .filter(|&j| j != i && self.alive[j])
            .collect();
        peers.sort_by_key(|&j| std::cmp::Reverse(self.height_of(j)));
        peers
    }

    /// Gossip-only catch-up: pulls each height replica `i` is missing
    /// from its live peers, freshest first. Mid-run (`through_faults`)
    /// every pulled frame is routed through the same seeded fault plan
    /// as gossip — a dropped response means the peer is unresponsive
    /// and the puller falls back to the next one, and a corrupt or
    /// lying response is refused by full re-execution on delivery (the
    /// pull never trusts the peer). A height nobody can serve right
    /// now is left for a later repair pass — partial progress is fine.
    fn pull_from_peers(&mut self, i: usize, through_faults: bool) -> Result<(), EngineError> {
        loop {
            let h = self.height_of(i);
            let peers = self.peers_by_freshness(i);
            let target = peers.first().map(|&p| self.height_of(p)).unwrap_or(0);
            if h >= target {
                return Ok(());
            }
            let mut applied = false;
            for &peer in &peers {
                let Some(frame) = self.net.frame_at(peer, h as u64) else { continue };
                let frame = if through_faults {
                    // Pulls are synchronous request/response: the first
                    // routed delivery is the reply (its delay does not
                    // reorder anything), none at all is a dropped reply.
                    match self.faults.route(&frame).into_iter().next() {
                        Some(d) => d.frame,
                        None => continue,
                    }
                } else {
                    frame
                };
                if self.net.deliver_frame(i, &frame).is_ok() {
                    applied = true;
                    break;
                }
                obs::counter_add("engine.pull_rejected", 1);
            }
            if !applied {
                return Ok(());
            }
        }
    }

    /// Whether replica `i`'s tip is off the canonical chain `c` — it
    /// accepted a block the network later abandoned, so pulls stall
    /// against it and only a genesis rebuild repairs it.
    fn diverged_from(&self, i: usize, c: usize) -> bool {
        let h = self.height_of(i);
        match self.net.validator(c).node.chain().blocks().get(h.saturating_sub(1)) {
            Some(b) => b.hash() != self.net.validator(i).node.chain().tip_hash(),
            None => false,
        }
    }

    /// Rebuilds validator `i` from genesis and re-pulls the ledger from
    /// its live peers — crash recovery, the repair path for a diverged
    /// tip, and the immediate cleanup for a proposer that lied (its
    /// honest block forked off the chain the network kept).
    fn heal(&mut self, i: usize, through_faults: bool) -> Result<(), EngineError> {
        self.heals += 1;
        let protos = self.prototypes()?;
        self.net.restart_validator(i, &self.allocations, &protos)?;
        obs::counter_add("engine.heals", 1);
        self.pull_from_peers(i, through_faults)
    }

    /// Repairs replica `i` against its peers: pulls missing heights,
    /// then heals if the tip diverged from the canonical chain.
    fn sync_from_peers(&mut self, i: usize, through_faults: bool) -> Result<(), EngineError> {
        self.pull_from_peers(i, through_faults)?;
        let Some(c) = self.canonical() else { return Ok(()) };
        if c != i && self.diverged_from(i, c) {
            return self.heal(i, through_faults);
        }
        Ok(())
    }

    /// Every validator is dead and no restart is coming: remaining
    /// work can never be mined, so the run winds down instead of
    /// ticking forever into the stall guard.
    fn network_doomed(&self) -> bool {
        self.pending_restarts == 0 && self.alive.iter().all(|&a| !a)
    }

    /// Whether any mined transaction is absent from the canonical
    /// chain — its round was lost with its holder, and the next batch
    /// tick will re-queue it.
    fn tx_missing_from_canonical(&self) -> bool {
        match self.canonical() {
            Some(c) => {
                let node = &self.net.validator(c).node;
                self.mined.iter().any(|tx| node.receipt(tx.hash()).is_none())
            }
            None => !self.mined.is_empty(),
        }
    }

    /// Whether any session still has unmined (or lost-and-unrecovered)
    /// work.
    fn work_remaining(&self) -> bool {
        !self.admission.is_empty()
            || !self.requeue.is_empty()
            || self.cursors.iter().zip(&self.plans).any(|(&c, p)| c < p.len())
            || self.tx_missing_from_canonical()
    }

    fn on_arrival(&mut self, s: usize) {
        if self.cursors[s] >= self.plans[s].len() {
            return;
        }
        let Some(tx) = self.plans[s].tx_at(self.cursors[s], self.contracts[s]) else {
            return;
        };
        match self.admission.push(tx) {
            Ok(()) => self.cursors[s] += 1,
            Err(_) => {
                self.backpressure += 1;
                obs::counter_add("engine.backpressure", 1);
            }
        }
        self.arrival_k[s] += 1;
        // A doomed network (everyone dead, nobody coming back) can
        // never mine: stop generating arrivals so the run winds down.
        if self.cursors[s] < self.plans[s].len() && !self.network_doomed() {
            let gap = self.arrivals[s].gap(self.arrival_k[s]);
            self.queue.push_in(gap, Event::Arrival { session: s });
        }
    }

    /// The elected proposer for the current term: `live[term % len]`
    /// over the ascending live set. Unlike a blind round-robin cursor,
    /// crashed validators are never elected (no wasted rounds) and the
    /// rule replays exactly from `(term, alive)` after a restore.
    fn elect(&self) -> Option<usize> {
        let live: Vec<usize> =
            (0..self.config.validators).filter(|&i| self.alive[i]).collect();
        if live.is_empty() {
            return None;
        }
        Some(live[(self.term % live.len() as u64) as usize])
    }

    /// Re-queues every mined transaction the canonical chain no longer
    /// holds a receipt for: its round was lost with its proposer (a
    /// crash or a lie after mining). The receipt check is what makes
    /// re-mining exactly-once — a tx present on the canonical chain is
    /// never resubmitted, and a lost one is re-mined onto a chain that
    /// never had it.
    fn resolve_lost_txs(&mut self) {
        let Some(c) = self.canonical() else { return };
        for k in 0..self.mined.len() {
            let tx = &self.mined[k];
            if self.net.validator(c).node.receipt(tx.hash()).is_some() {
                continue;
            }
            // Skip txs already awaiting re-mining (a tick where every
            // proposer lied leaves the requeue populated).
            if self.requeue.iter().any(|r| r.hash() == tx.hash()) {
                continue;
            }
            self.requeues += 1;
            obs::counter_add("engine.requeued", 1);
            self.requeue.push(self.mined[k].clone());
        }
    }

    /// Fans a frame out to every peer of `from` through fault routing.
    fn gossip(&mut self, from: usize, frame: &[u8]) {
        for peer in 0..self.config.validators {
            if peer == from {
                continue;
            }
            for d in self.faults.route(frame) {
                self.queue.push_in(d.delay, Event::Deliver { to: peer, frame: d.frame });
            }
        }
    }

    fn on_batch(&mut self) -> Result<(), EngineError> {
        self.batches += 1;
        self.batch_pending = false;
        self.resolve_lost_txs();
        let mut txs: Vec<Transaction> = std::mem::take(&mut self.requeue);
        while let Some(tx) = self.admission.pop() {
            txs.push(tx);
        }
        if !txs.is_empty() {
            // One election per attempt, at most one attempt per live
            // validator this tick: every lying proposer burns its term
            // and the next elected validator retries the same round.
            let live = self.alive.iter().filter(|&&a| a).count();
            for _ in 0..live {
                let Some(p) = self.elect() else { break };
                self.term += 1;
                self.sync_from_peers(p, true)?;
                if self.height_of(p) < self.canonical().map_or(0, |c| self.height_of(c)) {
                    // Catch-up stalled (every pull dropped): mining now
                    // would fork onto a stale parent. Pass the term on.
                    continue;
                }
                match self.byzantine.decide() {
                    Some(tamper) => {
                        // A scheduled lie: the proposer mines honestly
                        // but gossips a mutated frame. Honest replicas
                        // refuse it on re-execution; the liar forked
                        // itself and is rebuilt from its peers before
                        // it can serve anyone its bad chain.
                        let frame = self.net.propose_with(
                            p,
                            txs.clone(),
                            Some(&|b: &mut Block| apply_tamper(b, tamper)),
                        )?;
                        self.byzantine_rounds += 1;
                        obs::event(
                            obs::Subsystem::Engine,
                            "byzantine",
                            &[
                                ("proposer", (p as u64).into()),
                                ("term", self.term.into()),
                            ],
                        );
                        obs::counter_add("engine.byzantine_rounds", 1);
                        self.gossip(p, &frame);
                        self.heal(p, true)?;
                    }
                    None => {
                        let frame = self.net.propose(p, txs.clone())?;
                        self.blocks += 1;
                        obs::event(
                            obs::Subsystem::Engine,
                            "batch",
                            &[
                                ("height", (self.height_of(p) as u64).into()),
                                ("proposer", (p as u64).into()),
                                ("txs", (txs.len() as u64).into()),
                            ],
                        );
                        self.gossip(p, &frame);
                        for tx in txs.drain(..) {
                            if !self.mined.iter().any(|m| m.hash() == tx.hash()) {
                                self.mined.push(tx);
                            }
                        }
                        break;
                    }
                }
            }
            if !txs.is_empty() {
                // No honest eligible proposer this tick (all lied or
                // stalled, or nobody is alive): hold for the next one.
                self.requeue = txs;
            }
        }
        if self.work_remaining() && !self.network_doomed() {
            self.queue.push_in(self.config.batch_interval.max(1), Event::Batch);
            self.batch_pending = true;
        }
        Ok(())
    }

    fn on_deliver(&mut self, to: usize, frame: &[u8]) -> Result<(), EngineError> {
        if !self.alive[to] {
            obs::counter_add("engine.frames_to_dead", 1);
            return Ok(());
        }
        match self.net.deliver_frame(to, frame) {
            Ok(()) => Ok(()),
            Err(FrameError::Apply(BlockApplyError::WrongHeight { got, expected }))
                if got > expected =>
            {
                // The replica fell behind (dropped/reordered frames):
                // pull the gap from its live peers.
                self.sync_from_peers(to, true)
            }
            Err(FrameError::Apply(BlockApplyError::WrongHeight { .. })) => {
                // Stale duplicate of a height the replica already holds.
                obs::counter_add("engine.frames_stale", 1);
                Ok(())
            }
            Err(FrameError::Decode(_)) | Err(FrameError::Oversize { .. }) => {
                // Mutated junk; the content reaches the replica later by
                // peer catch-up.
                obs::counter_add("engine.frames_rejected", 1);
                Ok(())
            }
            Err(FrameError::Apply(_)) => {
                // Parent/root mismatch: a mutated frame, a lying
                // proposer's block, or a diverged tip — peer catch-up
                // repairs all three.
                obs::counter_add("engine.frames_rejected", 1);
                self.sync_from_peers(to, true)
            }
        }
    }

    fn on_crash(&mut self, node: usize) {
        if node < self.alive.len() && self.alive[node] {
            self.alive[node] = false;
            obs::event(obs::Subsystem::Engine, "crash", &[("node", (node as u64).into())]);
            // A crash at the tail of the run can orphan transactions
            // whose only copy died with this node, after the batch
            // cadence already wound down — restart it so the next tick
            // re-queues and re-mines them.
            if !self.batch_pending && self.work_remaining() && !self.network_doomed() {
                self.queue.push_in(self.config.batch_interval.max(1), Event::Batch);
                self.batch_pending = true;
            }
        }
    }

    fn on_restart(&mut self, node: usize) -> Result<(), EngineError> {
        self.pending_restarts = self.pending_restarts.saturating_sub(1);
        if node < self.alive.len() && !self.alive[node] {
            self.alive[node] = true;
            // Reboot from genesis; recovery pulls from live peers
            // through the fault plan, like any other catch-up.
            self.heal(node, true)?;
            obs::event(
                obs::Subsystem::Engine,
                "restart",
                &[
                    ("node", (node as u64).into()),
                    ("height", (self.net.validator(node).node.chain().height() as u64).into()),
                ],
            );
        }
        Ok(())
    }

    /// Processes a single event. `Ok(true)` while events remain.
    ///
    /// # Errors
    ///
    /// See [`Engine::run`].
    pub fn step(&mut self) -> Result<bool, EngineError> {
        let Some((_, event)) = self.queue.pop() else {
            return Ok(false);
        };
        let stall_bound = self.config.horizon.max(1 << 10).saturating_mul(256);
        if self.queue.now() > stall_bound {
            return Err(EngineError::Stalled { now: self.queue.now() });
        }
        match event {
            Event::Arrival { session } => self.on_arrival(session),
            Event::Batch => self.on_batch()?,
            Event::Deliver { to, frame } => self.on_deliver(to, &frame)?,
            Event::Crash { node } => self.on_crash(node),
            Event::Restart { node } => self.on_restart(node)?,
        }
        Ok(!self.queue.is_empty())
    }

    /// Runs the simulation to completion: drains the event queue, then
    /// brings every surviving replica up to the ledger and reports.
    ///
    /// # Errors
    ///
    /// [`EngineError::Stalled`] if the stall guard trips;
    /// [`EngineError::Network`] / [`EngineError::Internal`] on
    /// consistency failures (bugs, not fault injection — injected
    /// faults surface as rejections and heals, never errors).
    pub fn run(&mut self) -> Result<EngineReport, EngineError> {
        while self.step()? {}
        self.report()
    }

    /// Final convergence check and summary (also valid mid-run, e.g.
    /// right after a checkpoint restore).
    ///
    /// # Errors
    ///
    /// Propagates sync failures.
    pub fn report(&mut self) -> Result<EngineReport, EngineError> {
        let survivors: Vec<usize> =
            (0..self.config.validators).filter(|&i| self.alive[i]).collect();
        // Final catch-up is part of reporting, not the network: the
        // run is over, so pulls are direct (still re-validated) rather
        // than routed through the fault plan.
        for &i in &survivors {
            self.sync_from_peers(i, false)?;
        }
        let no_survivors = survivors.is_empty();
        let (tip, root, final_height) = match self.canonical() {
            Some(c) => {
                let node = &self.net.validator(c).node;
                (node.chain().tip_hash(), node.state().root(), node.chain().height())
            }
            // Nobody survived: all the engine can report is the
            // archive's stale observer view (genesis unless restored
            // from a checkpoint).
            None => (
                self.archive.chain().tip_hash(),
                self.archive.state().root(),
                self.archive.chain().height(),
            ),
        };
        let converged = !no_survivors
            && survivors.iter().all(|&i| {
                let node = &self.net.validator(i).node;
                node.chain().tip_hash() == tip && node.state().root() == root
            })
            && self.net.converged_among(&survivors);

        let receipt_ok = |tx: &Transaction| match self.canonical() {
            Some(c) => self.net.validator(c).node.receipt(tx.hash()).cloned(),
            None => self.archive.receipt(tx.hash()).cloned(),
        };
        let mut sessions_settled = 0;
        for (s, plan) in self.plans.iter().enumerate() {
            let all_ok = (0..plan.len()).all(|k| {
                plan.tx_at(k, self.contracts[s])
                    .and_then(|tx| receipt_ok(&tx))
                    .is_some_and(|r| matches!(r.status, ExecStatus::Success))
            });
            if all_ok {
                sessions_settled += 1;
            }
        }

        Ok(EngineReport {
            batches: self.batches,
            blocks: self.blocks,
            backpressure: self.backpressure,
            heals: self.heals,
            byzantine_rounds: self.byzantine_rounds,
            requeues: self.requeues,
            final_height,
            state_root: root,
            survivors,
            no_survivors,
            converged,
            sessions_settled,
            sessions_total: self.plans.len(),
            ticks: self.queue.now(),
        })
    }

    /// Serializes the live engine: simulation counters, session
    /// cursors, admission/requeue/in-flight transactions, per-replica
    /// heights, pending events, and the canonical chain (the freshest
    /// live replica's — the archive's only if nobody is alive) through
    /// the chain export codec. Restoring with [`Engine::restore`]
    /// resumes bit-identically — every stochastic stream is a pure
    /// function of `(seed, counter)`, and all counters are here.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_u8(CHECKPOINT_VERSION);
        buf.put_uvarint(self.seed);
        buf.put_uvarint(self.queue.now());
        buf.put_uvarint(self.queue.next_seq());
        buf.put_uvarint(self.term);
        buf.put_uvarint(self.batches);
        buf.put_uvarint(self.blocks);
        buf.put_uvarint(self.backpressure);
        buf.put_uvarint(self.heals);
        buf.put_uvarint(self.byzantine_rounds);
        buf.put_uvarint(self.requeues);
        buf.put_uvarint(self.faults.decisions());
        buf.put_uvarint(self.byzantine.decisions());
        buf.put_uvarint(self.alive.len() as u64);
        for &a in &self.alive {
            buf.put_u8(a as u8);
        }
        // Per-replica chain heights: restore rebuilds each replica at
        // its exact position by replaying the canonical prefix.
        buf.put_uvarint(self.config.validators as u64);
        for i in 0..self.config.validators {
            buf.put_uvarint(self.height_of(i) as u64);
        }
        buf.put_uvarint(self.cursors.len() as u64);
        for &c in &self.cursors {
            buf.put_uvarint(c as u64);
        }
        buf.put_uvarint(self.arrival_k.len() as u64);
        for &k in &self.arrival_k {
            buf.put_uvarint(k);
        }
        buf.put_uvarint(self.admission.len() as u64);
        for tx in self.admission.iter() {
            buf.put_varint_slice(&encode_tx_bytes(tx));
        }
        for txs in [&self.requeue, &self.mined] {
            buf.put_uvarint(txs.len() as u64);
            for tx in txs {
                buf.put_varint_slice(&encode_tx_bytes(tx));
            }
        }
        let pending = self.queue.pending();
        buf.put_uvarint(pending.len() as u64);
        for (time, _, seq, event) in pending {
            buf.put_uvarint(time);
            buf.put_uvarint(seq);
            event.encode(&mut buf);
        }
        let chain = match self.canonical() {
            Some(c) => encode_chain(self.net.validator(c).node.chain()),
            None => encode_chain(self.archive.chain()),
        };
        buf.put_varint_slice(&chain);
        buf.to_vec()
    }

    /// Rebuilds a live engine from a checkpoint: boots fresh (same
    /// config and seed), imports the ledger through the chain codec
    /// with full re-execution validation, replays every live replica up
    /// to it, and restores the simulation counters and pending events.
    ///
    /// # Errors
    ///
    /// [`EngineError::Checkpoint`] / [`EngineError::Codec`] on
    /// malformed bytes or config mismatch.
    pub fn restore(
        config: EngineConfig,
        seed: u64,
        checkpoint: &[u8],
    ) -> Result<Self, EngineError> {
        let mut engine = Engine::new(config, seed)?;
        let buf = &mut &checkpoint[..];
        let short = |_| EngineError::Checkpoint("truncated checkpoint".into());

        let version = buf.try_get_u8().map_err(short)?;
        if version != CHECKPOINT_VERSION {
            return Err(EngineError::Checkpoint(format!(
                "unknown checkpoint version {version}"
            )));
        }
        let ck_seed = buf.try_get_uvarint().map_err(short)?;
        if ck_seed != seed {
            return Err(EngineError::Checkpoint(format!(
                "checkpoint was taken under seed {ck_seed}, not {seed}"
            )));
        }
        let now = buf.try_get_uvarint().map_err(short)?;
        let next_seq = buf.try_get_uvarint().map_err(short)?;
        engine.term = buf.try_get_uvarint().map_err(short)?;
        engine.batches = buf.try_get_uvarint().map_err(short)?;
        engine.blocks = buf.try_get_uvarint().map_err(short)?;
        engine.backpressure = buf.try_get_uvarint().map_err(short)?;
        engine.heals = buf.try_get_uvarint().map_err(short)?;
        engine.byzantine_rounds = buf.try_get_uvarint().map_err(short)?;
        engine.requeues = buf.try_get_uvarint().map_err(short)?;
        let decisions = buf.try_get_uvarint().map_err(short)?;
        engine.faults.restore_decisions(decisions);
        let byz_decisions = buf.try_get_uvarint().map_err(short)?;
        engine.byzantine.restore_decisions(byz_decisions);

        let n_alive = buf.try_get_uvarint().map_err(short)? as usize;
        if n_alive != engine.alive.len() {
            return Err(EngineError::Checkpoint("validator count mismatch".into()));
        }
        for a in engine.alive.iter_mut() {
            *a = buf.try_get_u8().map_err(short)? != 0;
        }
        let n_heights = buf.try_get_uvarint().map_err(short)? as usize;
        if n_heights != engine.config.validators {
            return Err(EngineError::Checkpoint("validator count mismatch".into()));
        }
        let mut heights = Vec::with_capacity(engine.config.validators);
        for _ in 0..n_heights {
            heights.push(buf.try_get_uvarint().map_err(short)? as usize);
        }
        let n_cursors = buf.try_get_uvarint().map_err(short)? as usize;
        if n_cursors != engine.cursors.len() {
            return Err(EngineError::Checkpoint("session count mismatch".into()));
        }
        for c in engine.cursors.iter_mut() {
            *c = buf.try_get_uvarint().map_err(short)? as usize;
        }
        let n_k = buf.try_get_uvarint().map_err(short)? as usize;
        if n_k != engine.arrival_k.len() {
            return Err(EngineError::Checkpoint("session count mismatch".into()));
        }
        for k in engine.arrival_k.iter_mut() {
            *k = buf.try_get_uvarint().map_err(short)?;
        }

        let n_admission = buf.try_get_uvarint().map_err(short)? as usize;
        engine.admission = Bounded::new(engine.config.admission_capacity);
        for _ in 0..n_admission {
            let bytes =
                buf.try_get_varint_slice(buf.remaining() as u64).map_err(short)?;
            let tx = decode_tx_bytes(bytes)?;
            if engine.admission.push(tx).is_err() {
                return Err(EngineError::Checkpoint(
                    "admission queue exceeds configured capacity".into(),
                ));
            }
        }
        for section in [&mut engine.requeue, &mut engine.mined] {
            let n = bounded_count(
                buf.try_get_uvarint().map_err(short)? as usize,
                buf.remaining(),
                TX_ENTRY_MIN_BYTES,
            )?;
            section.clear();
            for _ in 0..n {
                let bytes =
                    buf.try_get_varint_slice(buf.remaining() as u64).map_err(short)?;
                section.push(decode_tx_bytes(bytes)?);
            }
        }

        // A forged checkpoint can declare any count; bound it by the
        // bytes actually present (each entry is ≥ time varint(1) + seq
        // varint(1) + event tag(1)) before the count sizes an
        // allocation.
        let n_pending = bounded_count(
            buf.try_get_uvarint().map_err(short)? as usize,
            buf.remaining(),
            PENDING_ENTRY_MIN_BYTES,
        )?;
        let mut entries = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            let time = buf.try_get_uvarint().map_err(short)?;
            let seq = buf.try_get_uvarint().map_err(short)?;
            let event = Event::decode(buf)?;
            entries.push((time, seq, event));
        }
        // Recompute rather than trust: the doomed-network and
        // batch-cadence checks must agree with the events actually in
        // the queue.
        engine.pending_restarts =
            entries.iter().filter(|(_, _, e)| matches!(e, Event::Restart { .. })).count();
        engine.batch_pending =
            entries.iter().any(|(_, _, e)| matches!(e, Event::Batch));
        engine.queue =
            EventQueue::restore(substream(seed, STREAM_QUEUE), now, next_seq, entries);

        let chain_bytes =
            buf.try_get_varint_slice(buf.remaining() as u64).map_err(short)?.to_vec();
        if !buf.is_empty() {
            return Err(EngineError::Checkpoint("trailing bytes".into()));
        }
        // Import through the chain codec, then replay into the fresh
        // archive with full re-execution validation — a forged
        // checkpoint cannot produce a diverging engine. (This is the
        // archive's checkpoint-vessel role; it plays no part mid-run.)
        let chain = decode_chain(&chain_bytes)?;
        let blocks = chain.blocks();
        let Some(genesis) = blocks.first() else {
            return Err(EngineError::Checkpoint("empty chain".into()));
        };
        if engine.archive.chain().tip_hash() != genesis.hash() {
            return Err(EngineError::Checkpoint(
                "checkpoint genesis does not match this config".into(),
            ));
        }
        for block in blocks.iter().skip(1) {
            if engine.archive.apply_block(block).is_err() {
                return Err(EngineError::Checkpoint(
                    "ledger replay failed validation".into(),
                ));
            }
        }
        // Rebuild every replica at its checkpointed height by replaying
        // the canonical prefix through its wire path. A dead replica's
        // height is capped by the canonical chain (its in-memory state
        // is wiped at restart anyway and it never serves pulls).
        for (i, &h) in heights.iter().enumerate() {
            let target = h.min(blocks.len());
            for block in &blocks[1..target.max(1)] {
                let frame = encode_block_bytes(block);
                if engine.net.deliver_frame(i, &frame).is_err() {
                    return Err(EngineError::Checkpoint(
                        "replica prefix replay failed validation".into(),
                    ));
                }
            }
        }
        Ok(engine)
    }
}

/// Applies a scheduled lie to a block the proposer is about to gossip.
/// Every kind breaks a commitment the honest re-execution path checks
/// (state root, receipts root, or a receipt the receipts root commits
/// to), so honest replicas always refuse the frame.
fn apply_tamper(block: &mut Block, t: Tamper) {
    let pos = (t.salt % 32) as usize;
    let bite = ((t.salt >> 8) as u8) | 1;
    match t.kind {
        TamperKind::StateRoot => block.header.state_root.0[pos] ^= bite,
        TamperKind::ReceiptsRoot => block.header.receipts_root.0[pos] ^= bite,
        TamperKind::ReceiptGas => match block.receipts.first_mut() {
            Some(r) => r.gas_used ^= (t.salt & 0xFFFF) | 1,
            // An empty block carries no receipts to lie about; lie
            // about the post-state instead.
            None => block.header.state_root.0[pos] ^= bite,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tradefl_runtime::sim::faults::CrashPlan;

    fn tiny_config() -> EngineConfig {
        EngineConfig {
            validators: 3,
            sessions: vec![SessionSpec { name: "m0".into(), orgs: 3, seed: 1 }],
            batch_interval: 5,
            mean_arrival_gap: 2.0,
            admission_capacity: 8,
            horizon: 512,
            faults: FaultConfig::none(),
            byzantine: ByzantineConfig::none(),
            max_frame_bytes: WireLimits::DEFAULT_MAX_FRAME_BYTES,
            workers: 1,
        }
    }

    #[test]
    fn fault_free_run_settles_and_converges() {
        let mut engine = Engine::new(tiny_config(), 42).unwrap();
        let report = engine.run().unwrap();
        assert!(report.fully_settled(), "{report:?}");
        assert_eq!(report.survivors, vec![0, 1, 2]);
        assert!(report.blocks > 0);
        assert!(report.final_height > 1);
    }

    #[test]
    fn runs_are_bit_deterministic() {
        let run = |seed| {
            let mut e = Engine::new(tiny_config(), seed).unwrap();
            e.run().unwrap()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same everything");
        let c = run(0xDEAD_BEEF);
        assert_ne!(
            (a.ticks, a.batches, a.blocks, a.backpressure),
            (c.ticks, c.batches, c.blocks, c.backpressure),
            "different seeds explore different schedules"
        );
    }

    #[test]
    fn two_sessions_share_one_chain() {
        let mut config = tiny_config();
        config.sessions.push(SessionSpec { name: "m1".into(), orgs: 2, seed: 9 });
        let mut engine = Engine::new(config, 3).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.sessions_total, 2);
        assert!(report.fully_settled(), "{report:?}");
    }

    #[test]
    fn tiny_admission_queues_defer_arrivals_but_still_settle() {
        let mut config = tiny_config();
        config.admission_capacity = 1;
        config.batch_interval = 20;
        let mut engine = Engine::new(config, 4).unwrap();
        let report = engine.run().unwrap();
        assert!(report.backpressure > 0, "capacity 1 must defer arrivals");
        assert!(report.fully_settled(), "{report:?}");
    }

    #[test]
    fn duplicate_session_names_are_rejected() {
        let mut config = tiny_config();
        config.sessions.push(config.sessions[0].clone());
        assert!(matches!(Engine::new(config, 0), Err(EngineError::Config(_))));
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let seed = 11;
        let mut uninterrupted = Engine::new(tiny_config(), seed).unwrap();
        let expected = uninterrupted.run().unwrap();

        let mut engine = Engine::new(tiny_config(), seed).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let bytes = engine.checkpoint();
        let mut restored = Engine::restore(tiny_config(), seed, &bytes).unwrap();
        let resumed = restored.run().unwrap();
        assert_eq!(resumed.state_root, expected.state_root);
        assert_eq!(resumed.final_height, expected.final_height);
        assert_eq!(resumed.blocks, expected.blocks);
        assert!(resumed.fully_settled());
    }

    #[test]
    fn checkpoints_reject_wrong_seed_and_garbage() {
        let engine = Engine::new(tiny_config(), 5).unwrap();
        let bytes = engine.checkpoint();
        assert!(matches!(
            Engine::restore(tiny_config(), 6, &bytes),
            Err(EngineError::Checkpoint(_))
        ));
        assert!(Engine::restore(tiny_config(), 5, &bytes[..bytes.len() / 2]).is_err());
        assert!(Engine::restore(tiny_config(), 5, &[0xff; 40]).is_err());
    }

    /// Varint-era truncation regression: every sampled strict prefix
    /// of a checkpoint must fail restore — a continuation bit on the
    /// final available byte maps to Truncated, never a read past the
    /// end or a silent partial restore.
    #[test]
    fn checkpoint_truncations_are_rejected_at_every_sampled_prefix() {
        let mut engine = Engine::new(tiny_config(), 5).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let bytes = engine.checkpoint();
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_ok());
        for cut in (1..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(
                Engine::restore(tiny_config(), 5, &bytes[..cut]).is_err(),
                "prefix of {cut} bytes restored successfully"
            );
        }
    }

    /// Varint-era overflow regression: an unterminated varint (eleven
    /// continuation bytes) spliced over the pending-event count must be
    /// refused as malformed, not spun on or misread as a huge value.
    #[test]
    fn unterminated_varint_in_checkpoint_is_rejected() {
        let mut engine = Engine::new(tiny_config(), 5).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let mut bytes = engine.checkpoint();
        let off = pending_count_offset(&bytes);
        bytes.splice(off..off, [0xFFu8; 11]);
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_err());
    }

    /// Byte offset of the pending-event count inside a checkpoint,
    /// found by walking the same section order [`Engine::checkpoint`]
    /// writes (fixed counters, then the alive/cursors/arrival_k/
    /// admission variable sections).
    fn pending_count_offset(bytes: &[u8]) -> usize {
        let mut cur: &[u8] = bytes;
        cur.advance(1); // version byte
        for _ in 0..12 {
            cur.try_get_uvarint().unwrap(); // seed + eleven counters
        }
        let alive = cur.try_get_uvarint().unwrap() as usize;
        cur.advance(alive); // one u8 per live validator
        // Heights, cursors, and arrival_k are varint-count-prefixed
        // runs of varints.
        for _ in 0..3 {
            let n = cur.try_get_uvarint().unwrap();
            for _ in 0..n {
                cur.try_get_uvarint().unwrap();
            }
        }
        // Admission, requeue, and last-round transaction sections share
        // one varint-length-prefixed layout.
        for _ in 0..3 {
            let txs = cur.try_get_uvarint().unwrap();
            for _ in 0..txs {
                let len = cur.try_get_uvarint().unwrap() as usize;
                cur.advance(len);
            }
        }
        bytes.len() - cur.remaining()
    }

    /// Byzantine oversize regression: a checkpoint whose pending-event
    /// count claims u64::MAX entries (far more than the bytes behind
    /// it) must be rejected up front by the `bounded_count` validation
    /// — not trusted into `Vec::with_capacity`, where the forged count
    /// becomes a forged-size allocation.
    #[test]
    fn forged_pending_count_is_rejected_before_allocating() {
        let mut engine = Engine::new(tiny_config(), 5).unwrap();
        for _ in 0..40 {
            engine.step().unwrap();
        }
        let mut bytes = engine.checkpoint();
        let off = pending_count_offset(&bytes);
        // Sanity: the walk landed on the real count (restore of the
        // unmodified bytes still works after a round-trip re-read).
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_ok());
        // Splice out the honest count varint and forge u64::MAX in its
        // place (nine continuation bytes + terminator).
        let honest_len = {
            let mut cur: &[u8] = &bytes[off..];
            let before = cur.remaining();
            cur.try_get_uvarint().unwrap();
            before - cur.remaining()
        };
        let mut forged = [0xFFu8; 10];
        forged[9] = 0x01;
        bytes.splice(off..off + honest_len, forged);
        assert!(Engine::restore(tiny_config(), 5, &bytes).is_err());
    }

    /// The tentpole's observable invariant: mid-run the archive is a
    /// passive observer, never written — all catch-up is peer-to-peer.
    #[test]
    fn archive_stays_at_genesis_during_a_run() {
        let mut engine = Engine::new(tiny_config(), 42).unwrap();
        let report = engine.run().unwrap();
        assert!(report.fully_settled(), "{report:?}");
        assert!(report.final_height > 1);
        assert_eq!(engine.archive().chain().height(), 1, "archive was written mid-run");
    }

    #[test]
    fn byzantine_proposers_are_outvoted_and_sessions_still_settle() {
        let mut config = tiny_config();
        config.byzantine = ByzantineConfig { tamper_p: 0.5 };
        let mut engine = Engine::new(config, 42).unwrap();
        let report = engine.run().unwrap();
        assert!(report.byzantine_rounds > 0, "tamper_p=0.5 must schedule lies: {report:?}");
        assert!(report.heals >= report.byzantine_rounds, "every liar gets rebuilt");
        assert!(report.fully_settled(), "{report:?}");
    }

    #[test]
    fn elections_skip_dead_validators_without_wasting_rounds() {
        let mut config = tiny_config();
        // Node 0 dies early and never comes back: the election must
        // route every term to the remaining two validators.
        config.faults.crashes =
            vec![CrashPlan { node: 0, at: 2, down_for: CrashPlan::NEVER_RESTARTS }];
        let mut engine = Engine::new(config, 42).unwrap();
        let report = engine.run().unwrap();
        assert_eq!(report.survivors, vec![1, 2]);
        assert!(!report.no_survivors);
        assert!(report.fully_settled(), "{report:?}");
    }

    /// Satellite regression: every validator dies permanently. The run
    /// must wind down (no stall-guard trip), report `no_survivors`, and
    /// refuse to call the empty survivor set converged.
    #[test]
    fn killing_every_validator_reports_no_survivors_not_converged() {
        let mut config = tiny_config();
        config.faults.crashes = (0..3)
            .map(|node| CrashPlan { node, at: 6, down_for: CrashPlan::NEVER_RESTARTS })
            .collect();
        let mut engine = Engine::new(config, 42).unwrap();
        let report = engine.run().unwrap();
        assert!(report.no_survivors, "{report:?}");
        assert!(report.survivors.is_empty());
        assert!(!report.converged, "zero-survivor convergence must be vacuous-false");
        assert!(!report.fully_settled());
    }
}
