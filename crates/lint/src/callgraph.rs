//! Workspace call graph and pool-entry reachability — the machinery
//! behind `no-nested-pool-scope`.
//!
//! The work-stealing pool (`tradefl_runtime::sync::pool::Pool`) runs
//! jobs on a fixed set of workers; a closure already executing *on*
//! the pool that re-enters `Pool::scope`/`map`/`map_indexed` (or
//! `parallel_map`) can deadlock: every worker may end up parked inside
//! an outer scope waiting for inner jobs no free worker exists to run.
//! That nesting is rarely lexical — the inner entry usually hides one
//! or more calls deep — so a token pattern cannot see it. This module
//! builds a name-keyed call graph over every parsed fn and computes
//! which fns can *reach* a pool entry, then flags calls made inside a
//! pooled closure whose callee reaches one (direct lexical nesting
//! included).
//!
//! Resolution is by simple callee name (no types), so distinct fns
//! sharing a name merge conservatively; a runtime-guarded site (e.g.
//! dispatch that checks `pool.workers() > 1` before going parallel)
//! that trips the rule documents its guard in a `lint:allow` reason —
//! that documentation is the point.

use crate::parse::{self, Expr, ExprKind, File, Item, ItemKind};
use crate::rules::RawFinding;
use std::collections::{BTreeMap, BTreeSet};

/// Pool methods that move the caller onto the worker set.
const POOL_ENTRY_METHODS: &[&str] = &["scope", "map", "map_indexed"];

/// Free fns that enter the global pool.
const POOL_ENTRY_FNS: &[&str] = &["parallel_map"];

/// One fn's call-graph record.
#[derive(Debug, Default)]
struct FnNode {
    /// Simple names of every callee (free-fn and method calls alike).
    calls: BTreeSet<String>,
    /// Lines of pool-entry sites lexically in this fn's body.
    pool_entries: Vec<u32>,
    /// Calls made from inside a closure passed to a pool-entry site:
    /// `(line, callee, direct_pool_entry)`.
    pooled_calls: Vec<PooledCall>,
}

#[derive(Debug)]
struct PooledCall {
    line: u32,
    callee: String,
    /// The call is itself a pool entry (lexical nesting).
    direct: bool,
}

/// The workspace call graph, keyed by file for finding attribution.
#[derive(Debug, Default)]
pub struct PoolIndex {
    /// (file, fn-name) → node.
    nodes: Vec<(String, String, FnNode)>,
    /// fn-name → indices into `nodes` (same-name fns merge).
    by_name: BTreeMap<String, Vec<usize>>,
    /// fn-names that reach a pool entry, mapped to a witness chain
    /// (`name → name → … → Pool::scope`).
    reaches_pool: BTreeMap<String, String>,
}

impl PoolIndex {
    /// Builds the graph over every parsed file and computes pool
    /// reachability to a fixpoint.
    pub fn build<'f>(files: impl IntoIterator<Item = (&'f str, &'f File)>) -> Self {
        let mut idx = PoolIndex::default();
        for (path, file) in files {
            for item in &file.items {
                idx.add_item(path, item);
            }
        }
        for (i, (_, name, _)) in idx.nodes.iter().enumerate() {
            idx.by_name.entry(name.clone()).or_default().push(i);
        }
        idx.compute_reachability();
        idx
    }

    fn add_item(&mut self, path: &str, item: &Item) {
        match &item.kind {
            ItemKind::Fn(func) => {
                let mut node = FnNode::default();
                if let Some(body) = &func.body {
                    let mut collector = Collector { node: &mut node, in_pooled_closure: false };
                    collect_block(body, &mut collector);
                }
                self.nodes.push((path.to_string(), item.name.clone(), node));
            }
            ItemKind::Mod(items) | ItemKind::Trait(items) | ItemKind::Impl { items, .. } => {
                for it in items {
                    self.add_item(path, it);
                }
            }
            _ => {}
        }
    }

    /// Fixpoint: a fn reaches the pool if its body holds a pool entry
    /// or it calls (by name) any *name* that reaches one. Because
    /// resolution is by simple name, a name counts as reaching only
    /// when **every** definition of it reaches — one `Solver::new`
    /// that dispatches parallel work must not convict the dozens of
    /// unrelated `new`s in the workspace (and through them, every fn
    /// constructing anything inside a pooled closure).
    fn compute_reachability(&mut self) {
        let n = self.nodes.len();
        // Per-definition reach status with a witness chain.
        let mut node_reach: Vec<Option<String>> = self
            .nodes
            .iter()
            .map(|(_, name, node)| {
                (!node.pool_entries.is_empty())
                    .then(|| format!("`{name}` enters the pool directly"))
            })
            .collect();
        let name_reaches = |reach: &[Option<String>], idx: &PoolIndex, name: &str| {
            idx.by_name
                .get(name)
                .is_some_and(|defs| !defs.is_empty() && defs.iter().all(|&i| reach[i].is_some()))
        };
        loop {
            let mut grew = false;
            for i in 0..n {
                if node_reach[i].is_some() {
                    continue;
                }
                let (_, name, node) = &self.nodes[i];
                if let Some(callee) = node
                    .calls
                    .iter()
                    .find(|c| name_reaches(&node_reach, self, c))
                {
                    // Witness via any def of the callee name (all reach,
                    // so any chain is a true chain for some resolution).
                    let via = self.by_name[callee]
                        .iter()
                        .find_map(|&j| node_reach[j].clone())
                        .unwrap_or_else(|| format!("`{callee}` enters the pool"));
                    node_reach[i] = Some(format!("`{name}` → {via}"));
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        for (name, defs) in &self.by_name {
            if defs.iter().all(|&i| node_reach[i].is_some()) {
                if let Some(witness) = defs.iter().find_map(|&i| node_reach[i].clone()) {
                    self.reaches_pool.insert(name.clone(), witness);
                }
            }
        }
    }

    /// `no-nested-pool-scope` findings for one file.
    pub fn check_file(&self, path: &str) -> Vec<RawFinding> {
        let mut out = Vec::new();
        for (file, name, node) in &self.nodes {
            if file != path {
                continue;
            }
            for pc in &node.pooled_calls {
                if pc.direct {
                    out.push(RawFinding {
                        rule: "no-nested-pool-scope",
                        line: pc.line,
                        message: format!(
                            "pool entry `{}` inside a closure already running on the pool \
                             (in `{name}`): nested entry can park every worker — restructure \
                             to a single dispatch level",
                            pc.callee
                        ),
                    });
                } else if let Some(chain) = self.reaches_pool.get(&pc.callee) {
                    out.push(RawFinding {
                        rule: "no-nested-pool-scope",
                        line: pc.line,
                        message: format!(
                            "call to `{}` inside a pooled closure (in `{name}`) reaches a \
                             pool entry: {chain} — nested entry can park every worker",
                            pc.callee
                        ),
                    });
                }
            }
        }
        out
    }
}

struct Collector<'n> {
    node: &'n mut FnNode,
    in_pooled_closure: bool,
}

/// Whether a method-call receiver plausibly denotes a pool: an ident
/// or field whose name contains "pool", or `Pool::global()`.
fn receiver_is_pool(recv: &Expr) -> bool {
    match &recv.kind {
        ExprKind::Path(segs) => segs
            .last()
            .is_some_and(|s| s.to_ascii_lowercase().contains("pool")),
        ExprKind::Field { name, .. } => name.to_ascii_lowercase().contains("pool"),
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => segs.iter().any(|s| s == "Pool"),
            _ => false,
        },
        ExprKind::Unary { expr, .. } | ExprKind::Try(expr) => receiver_is_pool(expr),
        _ => false,
    }
}

fn collect_block(block: &parse::Block, cx: &mut Collector<'_>) {
    for stmt in &block.stmts {
        match stmt {
            parse::Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    collect_expr(e, cx);
                }
                if let Some(b) = else_block {
                    collect_block(b, cx);
                }
            }
            parse::Stmt::Expr { expr, .. } => collect_expr(expr, cx),
            parse::Stmt::Item(item) => {
                // Fn-local fns are their own nodes only if named at
                // top level; keep it simple and scan their bodies in
                // the enclosing fn's context (closure flag off — a
                // local fn runs when called, not where defined).
                if let ItemKind::Fn(func) = &item.kind {
                    if let Some(b) = &func.body {
                        let saved = cx.in_pooled_closure;
                        cx.in_pooled_closure = false;
                        collect_block(b, cx);
                        cx.in_pooled_closure = saved;
                    }
                }
            }
        }
    }
}

fn collect_expr(expr: &Expr, cx: &mut Collector<'_>) {
    match &expr.kind {
        ExprKind::MethodCall { recv, method, args } => {
            let is_pool_entry =
                POOL_ENTRY_METHODS.contains(&method.as_str()) && receiver_is_pool(recv);
            // A pool-entry-named method on a non-pool receiver (e.g.
            // iterator `.map`) must not resolve by name against
            // `Pool::map` — entry detection is lexical, so drop the
            // edge entirely rather than poison reachability.
            if is_pool_entry || !POOL_ENTRY_METHODS.contains(&method.as_str()) {
                record_call(cx, expr.line, method, is_pool_entry);
            }
            collect_expr(recv, cx);
            for a in args {
                if is_pool_entry {
                    if let ExprKind::Closure { body, .. } = &a.kind {
                        let saved = cx.in_pooled_closure;
                        cx.in_pooled_closure = true;
                        collect_expr(body, cx);
                        cx.in_pooled_closure = saved;
                        continue;
                    }
                }
                collect_expr(a, cx);
            }
        }
        ExprKind::Call { callee, args } => {
            let name = match &callee.kind {
                ExprKind::Path(segs) => segs.last().cloned().unwrap_or_default(),
                _ => String::new(),
            };
            if !name.is_empty() {
                let is_pool_entry = POOL_ENTRY_FNS.contains(&name.as_str());
                record_call(cx, expr.line, &name, is_pool_entry);
                for a in args {
                    if is_pool_entry {
                        if let ExprKind::Closure { body, .. } = &a.kind {
                            let saved = cx.in_pooled_closure;
                            cx.in_pooled_closure = true;
                            collect_expr(body, cx);
                            cx.in_pooled_closure = saved;
                            continue;
                        }
                    }
                    collect_expr(a, cx);
                }
            } else {
                collect_expr(callee, cx);
                for a in args {
                    collect_expr(a, cx);
                }
            }
        }
        ExprKind::Closure { body, .. } => collect_expr(body, cx),
        ExprKind::Block(b) => collect_block(b, cx),
        ExprKind::If { cond, then_block, else_branch } => {
            collect_expr(cond, cx);
            collect_block(then_block, cx);
            if let Some(e) = else_branch {
                collect_expr(e, cx);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            collect_expr(scrutinee, cx);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    collect_expr(g, cx);
                }
                collect_expr(&arm.body, cx);
            }
        }
        ExprKind::Loop { head, body } => {
            if let Some(h) = head {
                collect_expr(h, cx);
            }
            collect_block(body, cx);
        }
        ExprKind::Field { base, .. } => collect_expr(base, cx),
        ExprKind::Index { base, index } => {
            collect_expr(base, cx);
            collect_expr(index, cx);
        }
        ExprKind::Unary { expr: e, .. } | ExprKind::Try(e) | ExprKind::Cast { expr: e, .. } => {
            collect_expr(e, cx)
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            collect_expr(lhs, cx);
            collect_expr(rhs, cx);
        }
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                collect_expr(e, cx);
            }
        }
        ExprKind::Repeat { elem, len } => {
            collect_expr(elem, cx);
            collect_expr(len, cx);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                collect_expr(a, cx);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, e) in fields {
                collect_expr(e, cx);
            }
        }
        ExprKind::Return(Some(e)) => collect_expr(e, cx),
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                collect_expr(e, cx);
            }
            if let Some(e) = hi {
                collect_expr(e, cx);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Return(None)
        | ExprKind::Jump
        | ExprKind::Opaque => {}
    }
}

fn record_call(cx: &mut Collector<'_>, line: u32, callee: &str, is_pool_entry: bool) {
    cx.node.calls.insert(callee.to_string());
    if is_pool_entry {
        cx.node.pool_entries.push(line);
    }
    if cx.in_pooled_closure {
        cx.node.pooled_calls.push(PooledCall {
            line,
            callee: callee.to_string(),
            direct: is_pool_entry,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn findings(src: &str) -> Vec<(u32, String)> {
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let index = PoolIndex::build([("x.rs", &file)]);
        index
            .check_file("x.rs")
            .into_iter()
            .map(|f| (f.line, f.message))
            .collect()
    }

    #[test]
    fn lexical_nesting_is_flagged() {
        let src = "fn f(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| {\n\
                   pool.map(jobs);\n\
                   });\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 3);
    }

    #[test]
    fn nesting_behind_one_call_is_flagged() {
        let src = "fn inner(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.map(jobs);\n}\n\
                   fn outer(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| {\n\
                   inner(pool, jobs);\n\
                   });\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, 6);
        assert!(got[0].1.contains("inner"), "{}", got[0].1);
    }

    #[test]
    fn nesting_behind_two_calls_is_flagged() {
        let src = "fn deep(pool: &Pool, jobs: Vec<J>) { pool.map_indexed(4, |i| i); }\n\
                   fn mid(pool: &Pool, jobs: Vec<J>) { deep(pool, jobs); }\n\
                   fn outer(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| { mid(pool, jobs); });\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].1.contains("mid"), "{}", got[0].1);
    }

    #[test]
    fn serial_helpers_inside_pooled_closures_are_clean() {
        let src = "fn payoff(i: usize) -> f64 { 0.0 }\n\
                   fn f(pool: &Pool) {\n\
                   pool.scope(|s| {\n\
                   let x = payoff(3);\n\
                   });\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn sibling_dispatch_outside_the_closure_is_clean() {
        let src = "fn f(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| { serial(); });\n\
                   pool.map(jobs);\n}\n\
                   fn serial() {}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn iterator_map_is_not_a_pool_entry() {
        let src = "fn f(items: Vec<u32>) -> Vec<u32> {\n\
                   items.iter().map(|x| x + 1).collect()\n}\n\
                   fn g(pool: &Pool) {\n\
                   pool.scope(|s| { f(Vec::new()); });\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn global_pool_receiver_is_recognized() {
        let src = "fn inner(jobs: Vec<J>) { Pool::global().map(jobs); }\n\
                   fn outer(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| { inner(jobs); });\n}\n";
        let got = findings(src);
        assert_eq!(got.len(), 1, "{got:?}");
    }

    #[test]
    fn parallel_map_free_fn_is_a_pool_entry() {
        let src = "fn inner(jobs: Vec<J>) { parallel_map(4, jobs); }\n\
                   fn outer(pool: &Pool, jobs: Vec<J>) {\n\
                   pool.scope(|s| { inner(jobs); });\n}\n";
        assert_eq!(findings(src).len(), 1);
    }
}
