//! A minimal Rust lexer — just enough fidelity for token-stream lints.
//!
//! The goal is *never* mistaking comment or string content for code:
//! every rule in [`crate::rules`] matches identifier/punctuation
//! sequences, so a `HashMap` mentioned in a doc comment or an error
//! message must not produce a finding. That requires handling the
//! genuinely tricky parts of Rust's lexical grammar:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */` — Rust block comments nest, unlike C);
//! * string literals with escapes, raw strings `r#"…"#` with any
//!   number of hashes, byte/raw-byte/C-string variants;
//! * the lifetime-vs-char-literal ambiguity (`'a` is a lifetime,
//!   `'a'` is a char, `'\n'` is a char, `'_` is a lifetime);
//! * raw identifiers (`r#type`) vs raw strings (`r#"…"#`);
//! * float literals vs ranges and field access (`1.5` is a float,
//!   `1..5` is two ints and a range, `tuple.0.1` is field access).
//!
//! What it does **not** do: macro expansion, type resolution, or path
//! normalization. Rules are documented as heuristic token matchers;
//! `use std::time::Instant as Clock;` would evade `no-wallclock`. The
//! escape hatch for false positives is `// lint:allow(rule): reason`
//! (see [`crate::engine`]), not lexer cleverness.

/// Kinds of tokens the lexer emits. Literal *content* is preserved in
/// [`Tok::text`] but rules only ever match on [`TokKind::Ident`] text
/// and [`TokKind::Punct`] text, so strings/chars can never produce
/// findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (also raw identifiers, without `r#`).
    Ident,
    /// A lifetime such as `'a` or `'_` (text keeps the leading `'`).
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Any string literal: plain, raw, byte, raw-byte, or C string.
    StrLit,
    /// A numeric literal; `float` is true for floating-point shapes
    /// (`1.5`, `1e3`, `2f64`) and false for integers (`1`, `0xff`).
    NumLit {
        /// Whether the literal is a float.
        float: bool,
    },
    /// An operator or delimiter, maximal-munch (`::`, `==`, `..=`, …).
    Punct,
}

/// One lexed token with its 1-based start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's text (identifier name, operator spelling, …).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// One comment (line or block), kept out of the token stream so rules
/// never match inside it. The engine scans comments for
/// `lint:allow(...)` markers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// 1-based line on which the comment ends (equal to `line` for
    /// line comments).
    pub end_line: u32,
    /// Comment text including its `//` / `/*` delimiters.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works by
/// first match.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "=>", "->", "<-", "..", "&&",
    "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Lexes `src`, returning tokens and comments. Never fails: malformed
/// input (unterminated strings, stray bytes) is consumed permissively —
/// the compiler, not the linter, owns rejecting invalid Rust.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() };
    lx.run();
    lx.out
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: u32) {
        let text = self.text_from(start);
        self.out.tokens.push(Tok { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => {
                    self.bump();
                    self.plain_string();
                    self.push(TokKind::StrLit, start, line);
                }
                b'\'' => self.lifetime_or_char(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => self.punct(),
            }
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = self.text_from(start);
        self.out.comments.push(Comment { line, end_line: line, text });
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: swallow to EOF
            }
        }
        let text = self.text_from(start);
        self.out.comments.push(Comment { line, end_line: self.line, text });
    }

    /// Consumes a plain `"…"` body (opening quote already consumed).
    fn plain_string(&mut self) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // the escaped character (may be ")
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw string at `r`/`br`/`cr` (prefix already consumed,
    /// `self.pos` at the first `#` or `"`).
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != Some(b'"') {
            return; // not actually a raw string; permissive bail-out
        }
        self.bump(); // opening quote
        'scan: while let Some(b) = self.bump() {
            if b == b'"' {
                for k in 0..hashes {
                    if self.peek(k) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// `'` — a lifetime (`'a`, `'_`, `'static`) or a char literal
    /// (`'a'`, `'\n'`, `'🦀'`). Disambiguation: after `'` + identifier
    /// run, a closing `'` makes it a char literal, anything else makes
    /// it a lifetime.
    fn lifetime_or_char(&mut self) {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening '
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then to closing '.
                self.bump();
                self.bump();
                while let Some(b) = self.peek(0) {
                    // covers multi-char escapes like '\u{1F980}'
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::CharLit, start, line);
            }
            Some(b) if is_ident_start(b) => {
                let mut k = 0usize;
                while self.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                if self.peek(k) == Some(b'\'') {
                    for _ in 0..=k {
                        self.bump();
                    }
                    self.push(TokKind::CharLit, start, line);
                } else {
                    for _ in 0..k {
                        self.bump();
                    }
                    self.push(TokKind::Lifetime, start, line);
                }
            }
            Some(_) => {
                // Non-identifier char literal: '1', '+', '∀' (any
                // bytes up to the closing quote).
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::CharLit, start, line);
            }
            None => self.push(TokKind::Punct, start, line),
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut float = false;
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
        {
            self.bump();
            self.bump();
            while self.peek(0).is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
                self.bump();
            }
            self.push(TokKind::NumLit { float: false }, start, line);
            return;
        }
        while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            self.bump();
        }
        // A '.' continues the float only when not a range (`1..2`) and
        // not a field/method access (`1.max(2)`, `x.0.1`).
        if self.peek(0) == Some(b'.')
            && self.peek(1) != Some(b'.')
            && !self.peek(1).is_some_and(is_ident_start)
        {
            float = true;
            self.bump();
            while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                self.bump();
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E'))
            && (self.peek(1).is_some_and(|b| b.is_ascii_digit())
                || (matches!(self.peek(1), Some(b'+' | b'-'))
                    && self.peek(2).is_some_and(|b| b.is_ascii_digit())))
        {
            float = true;
            self.bump(); // e
            self.bump(); // sign or first digit
            while self.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                self.bump();
            }
        }
        // Type suffix: `1u8`, `1.5f64`, `2f32` (the suffix alone makes
        // a float of `2f32`).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == b"f32" || suffix == b"f64" {
            float = true;
        }
        self.push(TokKind::NumLit { float }, start, line);
    }

    /// An identifier, or one of the literal prefixes `r"…"`, `r#"…"#`,
    /// `r#ident`, `b"…"`, `b'…'`, `br"…"`, `c"…"`, `cr"…"`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.pos;
        let line = self.line;
        let b0 = self.peek(0);
        let b1 = self.peek(1);
        let b2 = self.peek(2);
        match (b0, b1) {
            (Some(b'r'), Some(b'"' | b'#')) => {
                // Raw identifier `r#type` vs raw string `r#"…"#` / `r"…"`.
                if b1 == Some(b'#') && b2.is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    self.ident_run();
                    // Strip the r# so rules match the bare name.
                    let text = self.text_from(start + 2);
                    self.out.tokens.push(Tok { kind: TokKind::Ident, text, line });
                } else {
                    self.bump();
                    self.raw_string();
                    self.push(TokKind::StrLit, start, line);
                }
            }
            (Some(b'b'), Some(b'"')) | (Some(b'c'), Some(b'"')) => {
                self.bump();
                self.bump();
                self.plain_string();
                self.push(TokKind::StrLit, start, line);
            }
            (Some(b'b'), Some(b'\'')) => {
                self.bump();
                self.bump();
                if self.peek(0) == Some(b'\\') {
                    self.bump();
                }
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
                self.push(TokKind::CharLit, start, line);
            }
            (Some(b'b' | b'c'), Some(b'r')) if matches!(b2, Some(b'"' | b'#')) => {
                self.bump();
                self.bump();
                self.raw_string();
                self.push(TokKind::StrLit, start, line);
            }
            _ => {
                self.ident_run();
                self.push(TokKind::Ident, start, line);
            }
        }
    }

    fn ident_run(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    fn punct(&mut self) {
        let start = self.pos;
        let line = self.line;
        for op in MULTI_PUNCT {
            let bytes = op.as_bytes();
            if self.src[self.pos..].starts_with(bytes) {
                for _ in 0..bytes.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, start, line);
                return;
            }
        }
        self.bump();
        self.push(TokKind::Punct, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn nested_block_comments_stay_out_of_the_token_stream() {
        let src = "a /* outer /* inner */ still comment */ b";
        assert_eq!(idents(src), ["a", "b"]);
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner"));
    }

    #[test]
    fn block_comment_line_tracking_spans_lines() {
        let src = "x\n/* two\nlines */\ny";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].line, 2);
        assert_eq!(lexed.comments[0].end_line, 3);
        let y = &lexed.tokens[1];
        assert_eq!((y.text.as_str(), y.line), ("y", 4));
    }

    #[test]
    fn raw_strings_with_hashes_hide_their_content() {
        // The quote-hash dance inside must not terminate early, and
        // the HashMap inside must not become an identifier.
        let src = r####"let s = r##"a "# HashMap quote "## ; done"####;
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn raw_byte_and_c_strings_are_literals() {
        assert_eq!(idents(r##"br"HashMap" b"x" c"y" cr#"z"# end"##), ["end"]);
    }

    #[test]
    fn raw_identifiers_lex_as_bare_idents() {
        assert_eq!(idents("r#type r#match plain"), ["type", "match", "plain"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let d = '\\n'; let u = '_'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.as_str()).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| t.as_str()).collect();
        assert_eq!(lifetimes, ["'a", "'a"]);
        assert_eq!(chars, ["'a'", "'\\n'", "'_'"]);
    }

    #[test]
    fn static_lifetime_and_unicode_char() {
        let toks = kinds("&'static str; let c = '∀';");
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::CharLit && t.contains('∀')));
    }

    #[test]
    fn floats_vs_ranges_vs_field_access() {
        let toks = kinds("1.5 + x.0 + 1..2 + 2.0e-3 + 7f64 + 3usize + 0xff");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| matches!(k, TokKind::NumLit { float: true }))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "2.0e-3", "7f64"]);
        // `1..2` must lex as int, range-op, int.
        assert!(toks.contains(&(TokKind::NumLit { float: false }, "1".into())));
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::NumLit { float: false }, "0xff".into())));
    }

    #[test]
    fn trailing_dot_float_and_method_on_literal() {
        let toks = kinds("let a = (1.) ; let b = 1.max(2);");
        assert!(toks.contains(&(TokKind::NumLit { float: true }, "1.".into())));
        // `1.max` is int, dot, ident — not a float.
        assert!(toks.contains(&(TokKind::NumLit { float: false }, "1".into())));
        assert!(toks.contains(&(TokKind::Ident, "max".into())));
    }

    #[test]
    fn strings_hide_code_like_content() {
        let src = r#"let m = "HashMap::new() /* not a comment */ // nor this"; next"#;
        assert_eq!(idents(src), ["let", "m", "next"]);
        assert!(lex(src).comments.is_empty());
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        assert_eq!(idents(r#"let s = "a\"HashMap\"b"; tail"#), ["let", "s", "tail"]);
    }

    #[test]
    fn maximal_munch_operators() {
        let toks = kinds("a::b == c != d ..= e");
        let puncts: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert_eq!(puncts, ["::", "==", "!=", "..="]);
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn unterminated_constructs_do_not_hang() {
        lex("/* never closed");
        lex("\"never closed");
        lex("r#\"never closed");
        lex("'x");
    }
}
