//! The lint rules: what they match, where they apply, and why.
//!
//! Every rule is a heuristic **token-stream** matcher (see
//! [`crate::lexer`] for what that buys and what it misses) plus a path
//! scope. Scopes are workspace-relative path predicates, so moving a
//! file can change which rules see it — that is intentional: the
//! determinism contract applies to the solver/core/fl-sim/ledger/
//! engine crates, the wall-clock exemption to the bench harness, and
//! so on.
//!
//! False positives are handled by `// lint:allow(rule-id): reason`
//! (enforced to carry a reason, and flagged when unused) — see
//! [`crate::engine`].

use crate::lexer::{Tok, TokKind};

/// Which cargo target a file belongs to, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Library source (`src/` outside `src/bin/`).
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`).
    Bin,
    /// Integration tests (`tests/`).
    Test,
    /// Benchmarks (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// Static description of one rule, surfaced by `--explain` and the
/// fixture tests.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule identifier, used in findings and `lint:allow(…)`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Longer rationale shown by `--explain`.
    pub rationale: &'static str,
    /// Whether the rule also fires inside `#[cfg(test)]` items.
    pub in_tests: bool,
}

/// All rules, including the two meta rules enforced by the engine.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "no-registry-deps",
        summary: "every workspace dependency must be a path dependency",
        rationale: "The build environment has no crates.io access (DESIGN.md \u{a7}6): a single \
                    registry dependency anywhere in the workspace breaks every build at step \
                    zero. Extend crates/runtime instead of adding a registry crate. Superset of \
                    tests/no_external_deps.rs, which cross-checks this rule.",
        in_tests: true,
    },
    RuleInfo {
        id: "no-hash-iteration",
        summary: "no HashMap/HashSet in the deterministic crates (solver, core, fl-sim, ledger, \
                  engine)",
        rationale: "Hash iteration order is randomized per process, so iterating a \
                    HashMap/HashSet in an equilibrium or settlement path silently breaks the \
                    bit-identity contract (tests/determinism.rs). Use BTreeMap/BTreeSet or sort \
                    before iterating. The rule flags the *type names* — even lookup-only tables \
                    are one refactor away from an iteration, so the deterministic crates ban \
                    them outright; lint:allow a site only with an argument why no iteration \
                    order can ever escape.",
        in_tests: false,
    },
    RuleInfo {
        id: "no-wallclock",
        summary: "no Instant::now/SystemTime::now outside runtime::bench and crates/bench",
        rationale: "Wall-clock reads make control flow time-dependent, which breaks replayable \
                    seeds and makes equilibrium comparisons noisy (the exact failure mode \
                    coopetitive-CFL reproductions warn about). Timing belongs in \
                    tradefl_runtime::bench and the bench harness crate, which are exempt. \
                    One more sanctioned sink exists: obs::time_scope (DESIGN.md \u{a7}9), a \
                    doubly opt-in duration histogram whose reading can never reach control \
                    flow or the deterministic event stream — its single Instant::now call \
                    carries an in-place lint:allow. Observability events themselves are keyed \
                    by logical clocks (per-subsystem step counters), never wall time.",
        in_tests: true,
    },
    RuleInfo {
        id: "no-raw-threads",
        summary: "no std::thread::spawn outside runtime::sync",
        rationale: "Raw threads bypass the work-stealing pool's deterministic merge order and \
                    panic propagation (DESIGN.md \u{a7}6). Use tradefl_runtime::sync (Pool::scope, \
                    parallel_map) so worker count can never change results bit-for-bit.",
        in_tests: true,
    },
    RuleInfo {
        id: "no-panic-in-lib",
        summary: "no unwrap/expect/panic! in library code",
        rationale: "A panic in library code aborts the caller's whole computation — a malformed \
                    peer message must not take down a ledger node, and a degenerate market must \
                    surface SolveError, not a crash. Propagate the crate's error types instead. \
                    Test code, benches, examples and binaries are exempt; provable invariants \
                    may be lint:allow'd with the invariant spelled out.",
        in_tests: false,
    },
    RuleInfo {
        id: "no-float-eq",
        summary: "no ==/!= against float literals",
        rationale: "Exact float comparison is almost always a rounding bug. Where it is \
                    intentional (exact-zero sentinel guards before division, bit-identity \
                    checks), say so with lint:allow — the reason is the documentation.",
        in_tests: false,
    },
    RuleInfo {
        id: "no-alloc-in-hot-loop",
        summary: "no heap allocation in the GEMM kernel module or the \
                  model.rs/fed.rs/market.rs/incremental.rs hot fns",
        rationale: "The training loop's steady state performs zero heap allocations per step \
                    (DESIGN.md \u{a7}10): every buffer is owned by a Workspace or a caller and \
                    reused via resize-within-capacity. An innocent `vec!` or `.clone()` in \
                    linalg/kernel.rs, in model.rs's forward_with/sgd_step_with/evaluate_with, \
                    or in fed.rs's run_round/train_group/local_train aggregation loop \
                    reintroduces a per-step malloc that the benches will only catch as noise. \
                    Cold paths (constructors, error paths) may lint:allow with the reason \
                    spelled out.",
        in_tests: false,
    },
    RuleInfo {
        id: "unbounded-wire-alloc",
        summary: "no wire-derived length may reach an allocation without bounded_count/.min",
        rationale: "The ledger settles payments from untrusted frames: a decoder that passes a \
                    declared count (`try_get_*`/`decode_*`) straight into `with_capacity`, \
                    `.reserve`, or `vec![_; n]` lets one 9-byte frame demand a multi-gigabyte \
                    allocation — the classic byzantine OOM. The dataflow pass tracks the taint \
                    through bindings, `?`, casts, match arms, and one level of calls; flowing \
                    through `bounded_count(…)` (crates/ledger/src/codec.rs) or a `.min(…)` cap \
                    sanitizes. Validate before allocating, or lint:allow with the bound \
                    argument.",
        in_tests: false,
    },
    RuleInfo {
        id: "no-unchecked-money-arith",
        summary: "no raw +/-/* on Wei/balance/nonce values in crates/ledger",
        rationale: "Money math that silently wraps corrupts settlement: a balance overflow mints \
                    or burns funds, a nonce wrap re-opens replay. In crates/ledger, arithmetic \
                    whose operand is money-typed (`Wei`/`Fixed` by declared type, a \
                    balance/nonce/amount/fee/deposit/refund/stake field or binding, or the \
                    wrapped `.0` inside `impl Wei`/`impl Fixed`) must use \
                    checked_*/saturating_* — or carry a lint:allow spelling out why overflow is \
                    impossible or intended.",
        in_tests: false,
    },
    RuleInfo {
        id: "no-nested-pool-scope",
        summary: "no Pool::scope/map reachable from inside a pooled closure",
        rationale: "A closure already running on the work-stealing pool that re-enters \
                    `Pool::scope`/`map`/`map_indexed` (or `parallel_map`) can park every worker \
                    inside the outer scope waiting for inner jobs nobody is free to run — a \
                    real deadlock, and almost never lexical: the inner entry hides behind \
                    calls. The call graph flags calls inside pooled closures whose callee \
                    reaches a pool entry. Runtime-guarded dispatch (`pool.workers() > 1` \
                    fan-out-or-serial shapes) documents its guard in the lint:allow reason.",
        in_tests: false,
    },
    RuleInfo {
        id: "unused-result",
        summary: "no statement-position call that discards a Result",
        rationale: "A dropped `Result` is an error path that vanishes: the settlement failed, \
                    the frame was rejected, and the caller carried on. A statement-position \
                    call whose callee — resolved against the workspace signature index, only \
                    when every same-named definition returns `Result` — must propagate with \
                    `?`, bind, or match. (The std blocklist keeps `Vec::push`-style name \
                    collisions out.)",
        in_tests: false,
    },
    RuleInfo {
        id: "allow-span-precision",
        summary: "lint:allow must annotate the line or item it suppresses",
        rationale: "Allows bind to what they annotate: trailing comments to their own line, \
                    standalone comments to the next line — or, when that line opens an item \
                    (fn/impl/mod/…), to the whole parsed item span. A floating allow bound to \
                    nothing (blank line or EOF next) is dead precision: move it onto the code \
                    it suppresses or delete it. Not suppressible.",
        in_tests: true,
    },
    RuleInfo {
        id: "bad-allow",
        summary: "lint:allow must name a known rule and carry a reason",
        rationale: "`// lint:allow(rule-id): reason` is the only escape hatch, and the reason \
                    is load-bearing: it is the documentation a reviewer reads instead of the \
                    rule firing. An allow without a reason, or naming an unknown rule, is \
                    itself a finding. Not suppressible.",
        in_tests: true,
    },
    RuleInfo {
        id: "unused-allow",
        summary: "lint:allow that suppresses nothing must be removed",
        rationale: "Stale allows hide future violations: if the offending code was fixed, the \
                    annotation must go too, or it will silently swallow the next regression on \
                    that line. Not suppressible.",
        in_tests: true,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// A finding before allow-filtering (no file path yet).
#[derive(Debug, Clone)]
pub struct RawFinding {
    /// The violated rule's id.
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Classifies a workspace-relative path (`/`-separated) into a target.
pub fn classify(rel_path: &str) -> Target {
    if rel_path.starts_with("tests/") || rel_path.contains("/tests/") {
        Target::Test
    } else if rel_path.starts_with("benches/") || rel_path.contains("/benches/") {
        Target::Bench
    } else if rel_path.starts_with("examples/") || rel_path.contains("/examples/") {
        Target::Example
    } else if rel_path.starts_with("src/bin/")
        || rel_path.contains("/src/bin/")
        || rel_path.ends_with("src/main.rs")
    {
        Target::Bin
    } else {
        Target::Lib
    }
}

/// The crates bound by the determinism contract.
fn in_deterministic_crate(rel_path: &str) -> bool {
    [
        "crates/solver/src/",
        "crates/core/src/",
        "crates/fl-sim/src/",
        "crates/ledger/src/",
        "crates/engine/src/",
    ]
    .iter()
    .any(|p| rel_path.starts_with(p))
}

/// Paths allowed to read the wall clock.
fn wallclock_exempt(rel_path: &str) -> bool {
    rel_path.starts_with("crates/bench/")
        || rel_path == "crates/runtime/src/bench.rs"
        || rel_path.starts_with("crates/runtime/src/bench/")
}

/// Paths allowed to spawn raw threads (the pool implementation).
fn raw_thread_exempt(rel_path: &str) -> bool {
    rel_path == "crates/runtime/src/sync.rs" || rel_path.starts_with("crates/runtime/src/sync/")
}

/// Library code bound by the panic-safety and float-eq rules: lib
/// targets outside the bench harness crate.
fn panic_safety_scope(rel_path: &str, target: Target) -> bool {
    target == Target::Lib && !rel_path.starts_with("crates/bench/")
}

/// Files carrying zero-allocation hot paths: the kernel module (whole
/// file) and the per-file fn lists in [`HOT_FNS`].
fn hot_loop_scope(rel_path: &str) -> bool {
    rel_path == "crates/fl-sim/src/linalg/kernel.rs"
        || HOT_FNS.iter().any(|&(path, _)| path == rel_path)
}

/// The fns in model.rs whose bodies `no-alloc-in-hot-loop` covers —
/// the per-step training path. Cold model fns (constructors,
/// serialization) allocate freely.
const MODEL_HOT_FNS: &[&str] = &["forward_with", "sgd_step_with", "evaluate_with"];

/// The fns in fed.rs whose bodies the rule covers — the streaming
/// aggregation round loop: group dispatch + merge, per-group silo
/// training, and per-silo SGD. Setup (subset materialization, slot
/// construction) allocates freely.
const FED_HOT_FNS: &[&str] = &["run_round", "train_group", "local_train"];

/// The fns in core/market.rs the rule covers — the O(nnz) ρ row
/// accessors the DBR sweep leans on at N=10k: indexed lookup, the row
/// iterator (including its `next`/`fold` steady state), and the
/// row-sum/weight formulas built on it. Constructors (`from_triplets`,
/// `restrict`, …) allocate freely.
const MARKET_HOT_FNS: &[&str] = &[
    "get",
    "row_iter",
    "row_sum",
    "next",
    "fold",
    "rho",
    "rho_row",
    "competition_pressure",
    "weight",
];

/// The fns in core/incremental.rs the rule covers — the per-candidate
/// bisection steady state (`O(log N)` evaluations plus the one
/// `O(deg)` mover dot) and the `O(log N)` commit. The `O(N²)`
/// evaluator constructor and trace-row helpers allocate freely.
const INCREMENTAL_HOT_FNS: &[&str] = &[
    "rho_res",
    "payoff_at",
    "mover_payoff_at",
    "common_terms",
    "payoff_d_deriv_at",
    "commit",
    "resource_index_of",
    "set",
    "total_with",
];

/// Per-file hot-fn lists for `no-alloc-in-hot-loop` (kernel.rs is
/// whole-file and listed separately in [`hot_loop_spans`]).
const HOT_FNS: &[(&str, &[&str])] = &[
    ("crates/fl-sim/src/model.rs", MODEL_HOT_FNS),
    ("crates/fl-sim/src/fed.rs", FED_HOT_FNS),
    ("crates/core/src/market.rs", MARKET_HOT_FNS),
    ("crates/core/src/incremental.rs", INCREMENTAL_HOT_FNS),
];

/// Whether `rule_id` applies to the file at `rel_path` at all.
pub fn applies(rule_id: &str, rel_path: &str, target: Target) -> bool {
    match rule_id {
        "no-hash-iteration" => in_deterministic_crate(rel_path),
        "no-wallclock" => !wallclock_exempt(rel_path),
        "no-raw-threads" => !raw_thread_exempt(rel_path),
        "no-panic-in-lib" | "no-float-eq" => panic_safety_scope(rel_path, target),
        "no-alloc-in-hot-loop" => hot_loop_scope(rel_path),
        // The semantic rules cover library code everywhere (the
        // deadlock/OOM/lost-error hazards are library hazards; tests
        // and binaries fail loudly on their own)…
        "unbounded-wire-alloc" | "unused-result" => target == Target::Lib,
        // …except pool nesting, which additionally exempts the pool
        // implementation itself (runtime::sync hosts the entry points
        // the rule models as opaque).
        "no-nested-pool-scope" => target == Target::Lib && !raw_thread_exempt(rel_path),
        // Money arithmetic is a ledger-crate contract.
        "no-unchecked-money-arith" => rel_path.starts_with("crates/ledger/src/"),
        _ => true,
    }
}

/// Inclusive line spans covered by `no-alloc-in-hot-loop` in this
/// file: everything for the kernel module, the [`HOT_FNS`] bodies for
/// the listed files (located by `fn <name>` and brace matching, like
/// [`crate::engine::test_spans`]).
pub fn hot_loop_spans(rel_path: &str, tokens: &[Tok]) -> Vec<(u32, u32)> {
    if rel_path == "crates/fl-sim/src/linalg/kernel.rs" {
        return vec![(1, u32::MAX)];
    }
    let mut spans = Vec::new();
    let Some(&(_, hot_fns)) = HOT_FNS.iter().find(|&&(path, _)| path == rel_path) else {
        return spans;
    };
    for i in 0..tokens.len().saturating_sub(1) {
        if !(is_ident(&tokens[i], "fn")
            && tokens[i + 1].kind == TokKind::Ident
            && hot_fns.contains(&tokens[i + 1].text.as_str()))
        {
            continue;
        }
        // Body span: from `fn` to the matching close brace of the
        // first top-level `{` (signature parens hold no braces).
        let mut depth = 0i32;
        let mut end_line = tokens[i].line;
        for t in &tokens[i + 2..] {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            end_line = t.line;
        }
        spans.push((tokens[i].line, end_line));
    }
    spans
}

fn is_ident(t: &Tok, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

fn is_punct(t: &Tok, op: &str) -> bool {
    t.kind == TokKind::Punct && t.text == op
}

/// Runs every applicable token rule over one file's token stream.
pub fn run_token_rules(rel_path: &str, target: Target, tokens: &[Tok]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let t = tokens;
    let hot_spans = if applies("no-alloc-in-hot-loop", rel_path, target) {
        hot_loop_spans(rel_path, tokens)
    } else {
        Vec::new()
    };
    let in_hot_span = |line: u32| hot_spans.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    for i in 0..t.len() {
        if in_hot_span(t[i].line) {
            let alloc = if i + 2 < t.len()
                && is_ident(&t[i], "Vec")
                && is_punct(&t[i + 1], "::")
                && is_ident(&t[i + 2], "new")
            {
                Some("`Vec::new()`")
            } else if i + 1 < t.len() && is_ident(&t[i], "vec") && is_punct(&t[i + 1], "!") {
                Some("`vec![…]`")
            } else if i + 2 < t.len()
                && is_punct(&t[i], ".")
                && (is_ident(&t[i + 1], "clone") || is_ident(&t[i + 1], "to_vec"))
                && is_punct(&t[i + 2], "(")
            {
                if t[i + 1].text == "clone" {
                    Some("`.clone()`")
                } else {
                    Some("`.to_vec()`")
                }
            } else {
                None
            };
            if let Some(what) = alloc {
                out.push(RawFinding {
                    rule: "no-alloc-in-hot-loop",
                    line: t[i].line,
                    message: format!(
                        "{what} in a zero-allocation hot path: reuse a Workspace/caller buffer \
                         (resize within capacity) instead of allocating per step"
                    ),
                });
            }
        }
        if applies("no-hash-iteration", rel_path, target)
            && t[i].kind == TokKind::Ident
            && (t[i].text == "HashMap" || t[i].text == "HashSet")
        {
            out.push(RawFinding {
                rule: "no-hash-iteration",
                line: t[i].line,
                message: format!(
                    "`{}` in a deterministic crate: hash iteration order is nondeterministic \
                     — use BTreeMap/BTreeSet or sorted iteration",
                    t[i].text
                ),
            });
        }
        if applies("no-wallclock", rel_path, target)
            && i + 2 < t.len()
            && (is_ident(&t[i], "Instant") || is_ident(&t[i], "SystemTime"))
            && is_punct(&t[i + 1], "::")
            && is_ident(&t[i + 2], "now")
        {
            out.push(RawFinding {
                rule: "no-wallclock",
                line: t[i].line,
                message: format!(
                    "`{}::now` outside runtime::bench/crates/bench: wall-clock reads break \
                     seed replay",
                    t[i].text
                ),
            });
        }
        if applies("no-raw-threads", rel_path, target)
            && i + 2 < t.len()
            && is_ident(&t[i], "thread")
            && is_punct(&t[i + 1], "::")
            && (is_ident(&t[i + 2], "spawn") || is_ident(&t[i + 2], "Builder"))
        {
            out.push(RawFinding {
                rule: "no-raw-threads",
                line: t[i].line,
                message: format!(
                    "`thread::{}` outside runtime::sync: use the work-stealing pool \
                     (Pool::scope/parallel_map) for deterministic merges",
                    t[i + 2].text
                ),
            });
        }
        if applies("no-panic-in-lib", rel_path, target) {
            if i + 2 < t.len()
                && is_punct(&t[i], ".")
                && (is_ident(&t[i + 1], "unwrap") || is_ident(&t[i + 1], "expect"))
                && is_punct(&t[i + 2], "(")
            {
                out.push(RawFinding {
                    rule: "no-panic-in-lib",
                    line: t[i + 1].line,
                    message: format!(
                        "`.{}(…)` in library code: propagate the crate's error type instead \
                         of panicking",
                        t[i + 1].text
                    ),
                });
            }
            if i + 1 < t.len() && is_ident(&t[i], "panic") && is_punct(&t[i + 1], "!") {
                out.push(RawFinding {
                    rule: "no-panic-in-lib",
                    line: t[i].line,
                    message: "`panic!` in library code: propagate the crate's error type instead"
                        .to_string(),
                });
            }
        }
        if applies("no-float-eq", rel_path, target)
            && (is_punct(&t[i], "==") || is_punct(&t[i], "!="))
        {
            let float_before =
                i > 0 && matches!(t[i - 1].kind, TokKind::NumLit { float: true });
            let float_after =
                i + 1 < t.len() && matches!(t[i + 1].kind, TokKind::NumLit { float: true });
            if float_before || float_after {
                out.push(RawFinding {
                    rule: "no-float-eq",
                    line: t[i].line,
                    message: format!(
                        "`{}` against a float literal: exact float comparison — if the exact \
                         compare is intentional, say why with lint:allow",
                        t[i].text
                    ),
                });
            }
        }
    }
    out
}
