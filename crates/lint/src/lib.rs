//! `tradefl-lint` — in-tree static analysis for the TradeFL workspace.
//!
//! The reproduction's core claims — bit-identical Nash equilibria from
//! CGBD/DBR (Algorithms 1–2) and identical ledger state roots under
//! the settlement contract — rest on a determinism contract that spot
//! checks alone cannot defend: nothing used to stop a future change
//! from iterating a `HashMap` in a solver path, reading the wall
//! clock, or panicking a ledger node on a malformed peer message.
//! This crate makes those invariants hold *by construction*: a
//! zero-dependency lexer + rule engine runs as a tier-1 CI gate
//! (`scripts/ci.sh`).
//!
//! Layers:
//!
//! * [`lexer`] — a minimal but correct Rust tokenizer (nested block
//!   comments, raw strings, lifetime-vs-char disambiguation) so rules
//!   never fire inside comments or string literals;
//! * [`parse`] — a permissive recursive-descent item parser over the
//!   lexer (items, fn signatures, statement/expression spines) — the
//!   structural substrate for the semantic rules;
//! * [`flow`] — per-fn intra-procedural taint dataflow (wire-derived
//!   lengths vs `bounded_count`, money-typed arithmetic) with one
//!   level of call-through via fn summaries;
//! * [`callgraph`] — the workspace call graph and pool-entry
//!   reachability behind `no-nested-pool-scope`;
//! * [`rules`] — the rule table (`--explain` text included) and the
//!   token-pattern + semantic matchers with their path scopes;
//! * [`manifest`] — the `Cargo.toml` dependency scanner behind
//!   `no-registry-deps` (cross-checked against
//!   `tests/no_external_deps.rs`);
//! * [`engine`] — `#[cfg(test)]` scoping, the
//!   `// lint:allow(rule): reason` escape hatch (reasons required,
//!   item-precise binding, unused allows flagged), file discovery,
//!   finding assembly;
//! * [`json`] — the versioned `tradefl-lint/v2` report format and the
//!   in-tree schema checker CI validates it with;
//! * [`diff`] — changed-line extraction from `git diff` output for
//!   `--diff <base>` incremental linting.
//!
//! The binary (`cargo run -p tradefl-lint -- --workspace`) exits
//! non-zero on findings; see DESIGN.md §7 for the rule catalogue and
//! how to add a rule.

pub mod callgraph;
pub mod diff;
pub mod engine;
pub mod flow;
pub mod json;
pub mod lexer;
pub mod manifest;
pub mod parse;
pub mod rules;

pub use engine::{lint_manifest, lint_source, lint_workspace, Finding};
