//! A recursive-descent **item parser** over [`crate::lexer`]'s token
//! stream — the structural layer the semantic rules stand on.
//!
//! Token-pattern rules (PR 3) can say "`HashMap` appears"; they cannot
//! say "a value decoded from the wire reaches `with_capacity` without
//! passing `bounded_count`". That requires knowing what a *statement*
//! is, what a *call argument* is, and which `fn` a body belongs to.
//! This module produces exactly that much structure and no more:
//!
//! * **items** — modules, `use` imports, `fn`s with param/return
//!   signatures, `impl` blocks (with their self type), structs, enums,
//!   traits, consts — each with an inclusive line span, so allows and
//!   scopes can bind to the item they annotate;
//! * **statement/expression spines** inside fn bodies — `let`
//!   bindings, assignments, calls, method chains, `?`, `match`, `if`,
//!   loops, closures, casts, binary operators — enough for an
//!   intra-procedural dataflow pass ([`crate::flow`]) and a workspace
//!   call graph ([`crate::callgraph`]).
//!
//! # Permissiveness contract
//!
//! The parser must swallow the **entire workspace with zero errors**
//! (pinned by `crates/lint/tests/parser.rs`), and must never panic on
//! arbitrary token soup (fuzzed there too). Expression parsing is
//! therefore *total*: a construct the grammar does not recognize is
//! consumed as [`ExprKind::Opaque`] — one token at a time if need be —
//! rather than rejected. [`ParseError`]s are reserved for structural
//! impossibilities (an item body whose delimiters never balance before
//! EOF), which cannot occur in code `rustc` accepts. Fidelity is
//! *local*: an `Opaque` hole degrades the analysis of one expression,
//! never the file.
//!
//! Macros are not expanded. A macro invocation's arguments are parsed
//! as a best-effort comma/semicolon-separated expression list (so
//! `vec![0u8; n]` exposes `n` to the dataflow pass); bodies of
//! `macro_rules!` definitions are skipped wholesale.

use crate::lexer::{Lexed, Tok, TokKind};

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Structural parse failures (empty on everything `rustc` accepts).
    pub errors: Vec<ParseError>,
}

/// A structural parse failure.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line the failure was detected on.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

/// One item (top-level or nested in a `mod`/`impl`/`trait`).
#[derive(Debug)]
pub struct Item {
    /// What kind of item, with kind-specific payload.
    pub kind: ItemKind,
    /// Item name (`""` for `impl` blocks and unnamed items).
    pub name: String,
    /// 1-based first line (attributes included).
    pub line: u32,
    /// 1-based last line of the item (closing brace / semicolon).
    pub end_line: u32,
}

/// Item payloads.
#[derive(Debug)]
pub enum ItemKind {
    /// `mod name { … }` (inline) or `mod name;` (empty body).
    Mod(Vec<Item>),
    /// `use path…;` with the raw path text.
    Use(String),
    /// A function with signature and (for non-trait-decl fns) a body.
    Fn(FnItem),
    /// `impl [Trait for] Type { … }`.
    Impl {
        /// The self type's raw text (e.g. `Wei`, `Pool<'a>`).
        self_ty: String,
        /// The implemented trait's raw text, if any.
        trait_ty: Option<String>,
        /// Associated items (fns, consts, types).
        items: Vec<Item>,
    },
    /// `trait Name { … }` with its associated items.
    Trait(Vec<Item>),
    /// `struct` / `enum` / `union` declaration (fields not modeled).
    TypeDef,
    /// `const` / `static` binding.
    ConstDef,
    /// `type Alias = …;`
    TypeAlias,
    /// `macro_rules! name { … }` (body skipped).
    MacroDef,
    /// Anything else (e.g. `extern` blocks), consumed structurally.
    Other,
}

/// A parsed `fn`.
#[derive(Debug)]
pub struct FnItem {
    /// Parameters in order (receiver `self` included, with type `""`
    /// unless ascribed).
    pub params: Vec<Param>,
    /// Raw return-type text (`""` for unit).
    pub ret: String,
    /// Body block; `None` for bodiless trait/extern declarations.
    pub body: Option<Block>,
}

/// One fn parameter.
#[derive(Debug)]
pub struct Param {
    /// Binding name (pattern params contribute every bound name,
    /// joined — see [`bound_names`]).
    pub name: String,
    /// Raw type text.
    pub ty: String,
}

/// A `{ … }` block.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace.
    pub line: u32,
    /// 1-based line of the closing brace.
    pub end_line: u32,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let PAT[: TY] [= EXPR] [else BLOCK];`
    Let {
        /// Raw pattern text.
        pat: String,
        /// Raw ascribed type text (`""` when inferred).
        ty: String,
        /// Initializer, if present.
        init: Option<Expr>,
        /// `else` diverging block of a let-else, if present.
        else_block: Option<Block>,
        /// 1-based line of the `let`.
        line: u32,
    },
    /// An expression statement; `semi` records the trailing `;` (a
    /// statement-position call discards its value only when followed
    /// by `;` or standing before another statement).
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed.
        semi: bool,
    },
    /// A nested item (fn-local `fn`, `use`, `struct`, …).
    Item(Item),
}

/// One expression node.
#[derive(Debug)]
pub struct Expr {
    /// The node kind and payload.
    pub kind: ExprKind,
    /// 1-based line the expression starts on.
    pub line: u32,
}

/// Expression payloads — the shapes the dataflow pass consumes.
#[derive(Debug)]
pub enum ExprKind {
    /// A path: `x`, `a::b::c`, `Self::SCALE` (segments in order,
    /// turbofish stripped).
    Path(Vec<String>),
    /// Any literal (number, string, char, bool is a Path).
    Lit,
    /// `callee(args…)`.
    Call {
        /// Callee expression (usually a `Path`).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `recv.method(args…)`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments in order.
        args: Vec<Expr>,
    },
    /// `base.field` (also tuple indices: `base.0`).
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name or tuple index text.
        name: String,
    },
    /// `base[index]`.
    Index {
        /// Base expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Prefix `-`, `!`, `*`, `&`, `&mut`.
    Unary {
        /// Operator spelling.
        op: String,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Infix arithmetic/logic/comparison.
    Binary {
        /// Operator spelling (`+`, `==`, `&&`, …).
        op: String,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `lhs = rhs` and compound `lhs op= rhs`.
    Assign {
        /// `=`, `+=`, `-=`, ….
        op: String,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `expr?`.
    Try(Box<Expr>),
    /// `expr as Ty` (type text kept).
    Cast {
        /// The cast operand.
        expr: Box<Expr>,
        /// Raw target-type text.
        ty: String,
    },
    /// `|params| body` / `move |params| body`.
    Closure {
        /// Bound parameter names.
        params: Vec<String>,
        /// Closure body.
        body: Box<Expr>,
    },
    /// `if cond { … } [else …]` (also `if let`).
    If {
        /// Condition (or let-scrutinee).
        cond: Box<Expr>,
        /// Then block.
        then_block: Block,
        /// Else branch (`Block` or nested `If`).
        else_branch: Option<Box<Expr>>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arms in order.
        arms: Vec<Arm>,
    },
    /// `loop`/`while`/`while let`/`for … in …` with its body (the
    /// for-iterator / while-condition expression, if any, kept).
    Loop {
        /// Iterator or condition expression.
        head: Option<Box<Expr>>,
        /// Loop body.
        body: Block,
    },
    /// A block expression (`{ … }`, `unsafe { … }`).
    Block(Block),
    /// `(a, b, …)` (one-element parens collapse to the inner expr).
    Tuple(Vec<Expr>),
    /// `[a, b, …]`.
    Array(Vec<Expr>),
    /// `[elem; len]`.
    Repeat {
        /// Element expression.
        elem: Box<Expr>,
        /// Length expression.
        len: Box<Expr>,
    },
    /// `path! ( … )` / `path![…]` / `path!{…}` — args parsed
    /// best-effort; `semi_form` is true for `vec![elem; len]`.
    MacroCall {
        /// Macro path (joined with `::`).
        path: String,
        /// Parsed argument expressions.
        args: Vec<Expr>,
        /// Whether the args were `elem; len` shaped.
        semi_form: bool,
    },
    /// `Path { field: expr, … }` struct literal.
    StructLit {
        /// Struct path segments.
        path: Vec<String>,
        /// Field initializers (shorthand `x` becomes `(x, Path[x])`).
        fields: Vec<(String, Expr)>,
    },
    /// `return [expr]`.
    Return(Option<Box<Expr>>),
    /// `break [expr]` / `continue`.
    Jump,
    /// `lo .. hi` / `lo ..= hi` (either side optional).
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// Recovery: a token the expression grammar did not place.
    Opaque,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Raw pattern text.
    pub pat: String,
    /// Guard expression, if any.
    pub guard: Option<Expr>,
    /// Arm body.
    pub body: Expr,
}

/// Extracts the names a pattern binds: lowercase-initial identifiers
/// that are not pattern keywords. `Some(x)` binds `x`; `(a, mut b)`
/// binds `a`, `b`; constructors and paths (uppercase-initial) bind
/// nothing. Conservative in the right direction for taint: it may
/// report a name the pattern only matches against, never miss a
/// binding.
pub fn bound_names(pat: &str) -> Vec<String> {
    const PAT_KEYWORDS: &[&str] = &[
        "mut", "ref", "box", "if", "in", "as", "const", "move", "static", "self", "Self",
        "true", "false", "_",
    ];
    // Re-tokenize the raw pattern text: words, `::`, and single
    // puncts (whitespace dropped) — enough to tell a path segment
    // (`a::b`), a field name before a rename (`x: px`), and a plain
    // binding apart.
    let mut toks: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
            continue;
        }
        if !cur.is_empty() {
            toks.push(std::mem::take(&mut cur));
        }
        if c == ':' && chars.peek() == Some(&':') {
            chars.next();
            toks.push("::".into());
        } else if !c.is_whitespace() {
            toks.push(c.to_string());
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(first) = t.chars().next() else { continue };
        if !(first.is_lowercase() || first == '_') || first.is_ascii_digit() {
            continue;
        }
        if PAT_KEYWORDS.contains(&t.as_str()) {
            continue;
        }
        // Path segments (`mod::name`, `name::Variant`) bind nothing.
        if i > 0 && toks[i - 1] == "::" {
            continue;
        }
        if let Some(next) = toks.get(i + 1) {
            if next == "::" {
                continue;
            }
            // A field name before a rename (`x: px`) is not a binding.
            if next == ":" {
                continue;
            }
            // A macro-ish or call-ish head (`name!`, `name(`) is not a
            // binding either — tuple-struct patterns like `wrap(x)`.
            if next == "!" || next == "(" {
                continue;
            }
        }
        out.push(t.clone());
    }
    out
}

/// Parses lexed tokens into a [`File`]. Total: never panics; records
/// [`ParseError`]s only for unbalanced item structure.
pub fn parse(lexed: &Lexed) -> File {
    let mut p = Parser { toks: &lexed.tokens, pos: 0, errors: Vec::new(), fuel: FUEL_LIMIT };
    let items = p.items_until_end(None);
    File { items, errors: p.errors }
}

/// Convenience: lex + parse source text.
pub fn parse_source(src: &str) -> File {
    parse(&crate::lexer::lex(src))
}

/// Hard budget on parser steps, a defense-in-depth backstop so that no
/// token soup — however adversarial — can loop the parser forever. Set
/// far above any real file's cost (the whole workspace parses in well
/// under one unit of this per file).
const FUEL_LIMIT: u64 = 50_000_000;

const ITEM_KEYWORDS: &[&str] = &[
    "mod", "use", "fn", "impl", "struct", "enum", "union", "trait", "const", "static", "type",
    "extern", "pub", "unsafe", "macro_rules",
];

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
    errors: Vec<ParseError>,
    fuel: u64,
}

impl<'a> Parser<'a> {
    // ---- cursor primitives ---------------------------------------------

    fn peek(&self, ahead: usize) -> Option<&'a Tok> {
        self.toks.get(self.pos + ahead)
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or_else(|| self.last_line(), |t| t.line)
    }

    fn last_line(&self) -> u32 {
        self.toks.last().map_or(1, |t| t.line)
    }

    fn prev_line(&self) -> u32 {
        if self.pos == 0 {
            1
        } else {
            self.toks[self.pos - 1].line
        }
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        self.fuel = self.fuel.saturating_sub(1);
        if self.fuel == 0 {
            // Out of fuel: teleport to EOF so every loop terminates.
            self.pos = self.toks.len();
            return None;
        }
        let t = self.toks.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    fn at(&self, text: &str) -> bool {
        self.peek(0).is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
    }

    fn at_kw(&self, name: &str) -> bool {
        self.peek(0).is_some_and(|t| t.kind == TokKind::Ident && t.text == name)
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.at(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, name: &str) -> bool {
        if self.at_kw(name) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self) -> Option<String> {
        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
            self.bump().map(|t| t.text.clone())
        } else {
            None
        }
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.toks.len()
    }

    // ---- balanced skipping ---------------------------------------------

    /// Consumes a balanced `{…}` / `(…)` / `[…]` group, opening token
    /// included. Returns the close-delimiter line; records an error if
    /// EOF arrives first.
    fn skip_group(&mut self) -> u32 {
        let open_line = self.line();
        let mut depth = 0i64;
        while let Some(t) = self.bump() {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth <= 0 {
                            return t.line;
                        }
                    }
                    _ => {}
                }
            }
        }
        self.errors.push(ParseError {
            line: open_line,
            message: "unbalanced delimiters: group open at EOF".into(),
        });
        self.last_line()
    }

    /// Skips a generics list starting at `<` (cursor on `<`). Tolerates
    /// `>>`-merged closers.
    fn skip_generics(&mut self) {
        if !self.at("<") {
            return;
        }
        let mut depth = 0i64;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "<" | "<<" => depth += if t.text == "<<" { 2 } else { 1 },
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    // `>=` / `>>=` only appear in const-generic defaults;
                    // close one level and move on (permissive).
                    ">=" => depth -= 1,
                    ">>=" => depth -= 2,
                    "(" | "[" | "{" => {
                        self.skip_group();
                        continue;
                    }
                    ";" => break, // structural safety: generics never hold `;`
                    _ => {}
                }
            }
            self.bump();
            if depth <= 0 {
                break;
            }
        }
    }

    /// Collects raw type text until one of `stops` appears at depth 0.
    /// Tracks `()`/`[]`/`{}`/`<>` nesting; `->` inside `Fn(…) -> T`
    /// stays part of the type.
    fn type_text(&mut self, stops: &[&str]) -> String {
        let mut out = String::new();
        let mut angle = 0i64;
        let mut group = 0i64;
        while let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct {
                let s = t.text.as_str();
                if angle <= 0 && group <= 0 && stops.contains(&s) {
                    break;
                }
                match s {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" => angle -= 1,
                    ">>" => angle -= 2,
                    "(" | "[" | "{" => group += 1,
                    ")" | "]" | "}" => {
                        if group <= 0 {
                            break; // closing a group we did not open
                        }
                        group -= 1;
                    }
                    _ => {}
                }
            } else if t.kind == TokKind::Ident
                && angle <= 0
                && group <= 0
                && stops.contains(&t.text.as_str())
            {
                break;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(&t.text);
            self.bump();
        }
        out
    }

    /// Collects raw pattern text until one of `stops` appears at
    /// depth 0 (same nesting rules as [`Parser::type_text`]).
    fn pattern_text(&mut self, stops: &[&str]) -> String {
        self.type_text(stops)
    }

    // ---- items ----------------------------------------------------------

    /// Parses items until EOF (`closer: None`) or a closing `}`.
    fn items_until_end(&mut self, closer: Option<&str>) -> Vec<Item> {
        let mut items = Vec::new();
        loop {
            if self.at_eof() {
                break;
            }
            if let Some(c) = closer {
                if self.at(c) {
                    break;
                }
            }
            let before = self.pos;
            if let Some(item) = self.item() {
                items.push(item);
            }
            if self.pos == before {
                // Safety: an item parse that consumed nothing would
                // loop; swallow one token as unknown.
                self.bump();
            }
        }
        items
    }

    /// Parses one item. Consumes attributes/visibility first.
    fn item(&mut self) -> Option<Item> {
        let start_line = self.line();
        self.skip_attributes();
        self.skip_visibility();
        // Qualifiers that may precede `fn`/`impl`/`trait`.
        while self.at_kw("unsafe")
            || self.at_kw("async")
            || self.at_kw("default")
            || (self.at_kw("extern") && self.peek(1).is_some_and(|t| t.kind == TokKind::StrLit))
        {
            if self.at_kw("extern") {
                self.bump(); // extern
                self.bump(); // "C"
            } else {
                self.bump();
            }
        }
        if self.at_kw("macro_rules") {
            self.bump();
            self.eat("!");
            let name = self.eat_ident().unwrap_or_default();
            let end_line = if self.at("{") || self.at("(") || self.at("[") {
                self.skip_group()
            } else {
                self.prev_line()
            };
            return Some(Item { kind: ItemKind::MacroDef, name, line: start_line, end_line });
        }
        if self.at_kw("mod") {
            self.bump();
            let name = self.eat_ident().unwrap_or_default();
            if self.eat(";") {
                let end = self.prev_line();
                return Some(Item { kind: ItemKind::Mod(Vec::new()), name, line: start_line, end_line: end });
            }
            self.eat("{");
            let items = self.items_until_end(Some("}"));
            self.eat("}");
            let end = self.prev_line();
            return Some(Item { kind: ItemKind::Mod(items), name, line: start_line, end_line: end });
        }
        if self.at_kw("use") || self.at_kw("extern") {
            let is_use = self.at_kw("use");
            self.bump();
            let path = self.type_text(&[";"]);
            self.eat(";");
            let kind = if is_use { ItemKind::Use(path) } else { ItemKind::Other };
            return Some(Item { kind, name: String::new(), line: start_line, end_line: self.prev_line() });
        }
        if self.at_kw("fn") {
            return Some(self.fn_item(start_line));
        }
        if self.at_kw("impl") {
            return Some(self.impl_item(start_line));
        }
        if self.at_kw("trait") {
            self.bump();
            let name = self.eat_ident().unwrap_or_default();
            self.skip_generics();
            // Supertraits / where clause: skip to the body or `;`.
            while !self.at_eof() && !self.at("{") && !self.at(";") {
                if self.at("(") || self.at("[") {
                    self.skip_group();
                } else {
                    self.bump();
                }
            }
            if self.eat(";") {
                return Some(Item { kind: ItemKind::Trait(Vec::new()), name, line: start_line, end_line: self.prev_line() });
            }
            self.eat("{");
            let items = self.items_until_end(Some("}"));
            self.eat("}");
            return Some(Item { kind: ItemKind::Trait(items), name, line: start_line, end_line: self.prev_line() });
        }
        if self.at_kw("struct") || self.at_kw("enum") || self.at_kw("union") {
            self.bump();
            let name = self.eat_ident().unwrap_or_default();
            self.skip_generics();
            // Tuple struct `(…);`, unit struct `;`, or braced body.
            while !self.at_eof() && !self.at("{") && !self.at(";") && !self.at("(") {
                self.bump(); // where clause etc.
            }
            if self.at("(") {
                self.skip_group();
                // where clause may follow a tuple struct
                while !self.at_eof() && !self.at(";") {
                    if self.at("{") {
                        self.skip_group();
                        break;
                    }
                    self.bump();
                }
                self.eat(";");
            } else if self.at("{") {
                self.skip_group();
            } else {
                self.eat(";");
            }
            return Some(Item { kind: ItemKind::TypeDef, name, line: start_line, end_line: self.prev_line() });
        }
        if self.at_kw("const") || self.at_kw("static") {
            self.bump();
            self.eat_kw("mut");
            let name = self.eat_ident().unwrap_or_default();
            // `const fn` — the ident was actually `fn`'s name? No:
            // `const fn name` has `fn` right after `const`.
            if name == "fn" || self.at_kw("fn") {
                if name != "fn" {
                    self.bump();
                }
                return Some(self.fn_signature_and_body(start_line));
            }
            // `const NAME: Ty = expr;` — the initializer may hold
            // braces; consume with depth tracking.
            let mut depth = 0i64;
            while let Some(t) = self.peek(0) {
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "{" | "(" | "[" => depth += 1,
                        "}" | ")" | "]" => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ";" if depth == 0 => break,
                        _ => {}
                    }
                }
                self.bump();
            }
            self.eat(";");
            return Some(Item { kind: ItemKind::ConstDef, name, line: start_line, end_line: self.prev_line() });
        }
        if self.at_kw("type") {
            self.bump();
            let name = self.eat_ident().unwrap_or_default();
            self.type_text(&[";"]);
            self.eat(";");
            return Some(Item { kind: ItemKind::TypeAlias, name, line: start_line, end_line: self.prev_line() });
        }
        // Unknown construct at item position: macro invocation item
        // (`props! { … }`) or stray tokens. A `path!{…}`/`path!(…);`
        // item is common in this workspace (props!, impl_codec!).
        if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = self.eat_ident().unwrap_or_default();
            // Consume `::seg` path tails.
            while self.at("::") {
                self.bump();
                self.eat_ident();
            }
            if self.eat("!") {
                let end_line = if self.at("{") || self.at("(") || self.at("[") {
                    let l = self.skip_group();
                    self.eat(";");
                    l
                } else {
                    self.prev_line()
                };
                return Some(Item { kind: ItemKind::Other, name, line: start_line, end_line });
            }
            // Not a macro: swallow to the next `;` or balanced group.
            while !self.at_eof() && !self.at(";") && !self.at("}") {
                if self.at("{") || self.at("(") || self.at("[") {
                    self.skip_group();
                    break;
                }
                self.bump();
            }
            self.eat(";");
            return Some(Item { kind: ItemKind::Other, name, line: start_line, end_line: self.prev_line() });
        }
        None
    }

    fn skip_attributes(&mut self) {
        loop {
            if self.at("#") {
                let after = self.peek(1).map(|t| t.text.as_str());
                if after == Some("[") || after == Some("!") {
                    self.bump(); // #
                    self.eat("!");
                    if self.at("[") {
                        self.skip_group();
                    }
                    continue;
                }
            }
            break;
        }
    }

    fn skip_visibility(&mut self) {
        if self.eat_kw("pub") && self.at("(") {
            self.skip_group();
        }
    }

    fn fn_item(&mut self, start_line: u32) -> Item {
        self.bump(); // fn
        self.fn_signature_and_body(start_line)
    }

    /// Parses from the fn *name* onward (the `fn` keyword is consumed).
    fn fn_signature_and_body(&mut self, start_line: u32) -> Item {
        let name = self.eat_ident().unwrap_or_default();
        self.skip_generics();
        let mut params = Vec::new();
        if self.eat("(") {
            while !self.at_eof() && !self.at(")") {
                self.skip_attributes();
                // Receiver forms: `self`, `&self`, `&mut self`,
                // `&'a self`, `mut self`, `self: Ty`.
                let pat = self.pattern_text(&[":", ",", ")"]);
                let ty = if self.eat(":") { self.type_text(&[",", ")"]) } else { String::new() };
                for bound in bound_names(&pat) {
                    params.push(Param { name: bound, ty: ty.clone() });
                }
                if pat.contains("self") && bound_names(&pat).is_empty() {
                    params.push(Param { name: "self".into(), ty: ty.clone() });
                }
                if !self.eat(",") {
                    break;
                }
            }
            self.eat(")");
        }
        let ret = if self.eat("->") { self.type_text(&["where", "{", ";"]) } else { String::new() };
        if self.at_kw("where") {
            self.type_text(&["{", ";"]);
        }
        let body = if self.at("{") {
            Some(self.block())
        } else {
            self.eat(";");
            None
        };
        let end_line = self.prev_line();
        Item {
            kind: ItemKind::Fn(FnItem { params, ret, body }),
            name,
            line: start_line,
            end_line,
        }
    }

    fn impl_item(&mut self, start_line: u32) -> Item {
        self.bump(); // impl
        self.skip_generics();
        let head = self.type_text(&["where", "{"]);
        if self.at_kw("where") {
            self.type_text(&["{"]);
        }
        let (trait_ty, self_ty) = match head.split_once(" for ") {
            Some((t, s)) => (Some(t.trim().to_string()), s.trim().to_string()),
            None => (None, head.trim().to_string()),
        };
        self.eat("{");
        let items = self.items_until_end(Some("}"));
        self.eat("}");
        Item {
            kind: ItemKind::Impl { self_ty, trait_ty, items },
            name: String::new(),
            line: start_line,
            end_line: self.prev_line(),
        }
    }

    // ---- statements ------------------------------------------------------

    /// Parses a `{ … }` block (cursor on `{`).
    fn block(&mut self) -> Block {
        let line = self.line();
        self.eat("{");
        let mut stmts = Vec::new();
        while !self.at_eof() && !self.at("}") {
            let before = self.pos;
            if let Some(s) = self.stmt() {
                stmts.push(s);
            }
            if self.pos == before {
                self.bump(); // recovery: never stall
            }
        }
        self.eat("}");
        Block { stmts, line, end_line: self.prev_line() }
    }

    fn stmt(&mut self) -> Option<Stmt> {
        self.skip_attributes();
        if self.eat(";") {
            return None;
        }
        if self.at_kw("let") {
            return Some(self.let_stmt());
        }
        // Nested items. `unsafe`/`pub` prefixed items need lookahead;
        // a bare ident that matches an item keyword only counts when
        // the following token confirms the item shape (so expression
        // uses of e.g. `use` — impossible — or macro names don't trip).
        if self.at_item_start() {
            let item = self.item()?;
            return Some(Stmt::Item(item));
        }
        let expr = self.expr(true);
        let semi = self.eat(";");
        Some(Stmt::Expr { expr, semi })
    }

    fn at_item_start(&self) -> bool {
        let Some(t) = self.peek(0) else { return false };
        if t.kind == TokKind::Punct && t.text == "#" {
            // Attribute already skipped by stmt(); `#` here means a
            // nested attribute on an expression — rare; treat as expr.
            return false;
        }
        if t.kind != TokKind::Ident {
            return false;
        }
        match t.text.as_str() {
            "fn" | "struct" | "enum" | "union" | "trait" | "impl" | "mod" | "use" | "type"
            | "macro_rules" => true,
            // `const` starts an item (`const X: T` / `const fn`) but
            // also appears in `const { … }` blocks (not used here).
            "const" => self.peek(1).is_some_and(|n| n.kind == TokKind::Ident),
            "static" => self.peek(1).is_some_and(|n| n.kind == TokKind::Ident),
            "pub" => true,
            // `unsafe fn` / `unsafe impl` are items; `unsafe { … }` is
            // an expression.
            "unsafe" => self
                .peek(1)
                .is_some_and(|n| n.kind == TokKind::Ident && ITEM_KEYWORDS.contains(&n.text.as_str())),
            "extern" => self.peek(1).is_some_and(|n| {
                n.kind == TokKind::StrLit || (n.kind == TokKind::Ident && n.text == "crate")
            }),
            _ => false,
        }
    }

    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
        let pat = self.pattern_text(&[":", "=", ";"]);
        let ty = if self.eat(":") { self.type_text(&["=", ";"]) } else { String::new() };
        let mut init = None;
        let mut else_block = None;
        if self.eat("=") {
            init = Some(self.expr(true));
            if self.eat_kw("else") {
                if self.at("{") {
                    else_block = Some(self.block());
                }
            }
        }
        self.eat(";");
        Stmt::Let { pat, ty, init, else_block, line }
    }

    // ---- expressions -----------------------------------------------------

    /// Entry: full-precedence expression. `struct_lit` gates `Path {`
    /// struct literals (off in `if`/`while`/`for`/`match` heads).
    fn expr(&mut self, struct_lit: bool) -> Expr {
        self.assign_expr(struct_lit)
    }

    fn assign_expr(&mut self, struct_lit: bool) -> Expr {
        let lhs = self.range_expr(struct_lit);
        const ASSIGN_OPS: &[&str] =
            &["=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>="];
        if let Some(t) = self.peek(0) {
            if t.kind == TokKind::Punct && ASSIGN_OPS.contains(&t.text.as_str()) {
                let op = t.text.clone();
                let line = lhs.line;
                self.bump();
                let rhs = self.assign_expr(struct_lit);
                return Expr {
                    kind: ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    line,
                };
            }
        }
        lhs
    }

    fn range_expr(&mut self, struct_lit: bool) -> Expr {
        // Prefix range: `..hi`, `..=hi`, bare `..`.
        if self.at("..") || self.at("..=") {
            let line = self.line();
            self.bump();
            let hi = if self.range_operand_follows() {
                Some(Box::new(self.binary_expr(0, struct_lit)))
            } else {
                None
            };
            return Expr { kind: ExprKind::Range { lo: None, hi }, line };
        }
        let lo = self.binary_expr(0, struct_lit);
        if self.at("..") || self.at("..=") {
            let line = lo.line;
            self.bump();
            let hi = if self.range_operand_follows() {
                Some(Box::new(self.binary_expr(0, struct_lit)))
            } else {
                None
            };
            return Expr { kind: ExprKind::Range { lo: Some(Box::new(lo)), hi }, line };
        }
        lo
    }

    /// Whether a token that can begin a range bound follows.
    fn range_operand_follows(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => !(t.kind == TokKind::Punct
                && matches!(t.text.as_str(), ")" | "]" | "}" | "," | ";" | "=>" | "{")),
        }
    }

    /// Binary operator precedence (higher binds tighter). `as` casts
    /// are handled in the same climb at the top tier.
    fn binop_prec(op: &str) -> Option<u8> {
        Some(match op {
            "||" => 1,
            "&&" => 2,
            "==" | "!=" | "<" | ">" | "<=" | ">=" => 3,
            "|" => 4,
            "^" => 5,
            "&" => 6,
            "<<" | ">>" => 7,
            "+" | "-" => 8,
            "*" | "/" | "%" => 9,
            _ => return None,
        })
    }

    fn binary_expr(&mut self, min_prec: u8, struct_lit: bool) -> Expr {
        let mut lhs = self.unary_expr(struct_lit);
        loop {
            // Casts bind tighter than any binary operator.
            if self.at_kw("as") {
                self.bump();
                let ty = self.cast_type_text();
                let line = lhs.line;
                lhs = Expr { kind: ExprKind::Cast { expr: Box::new(lhs), ty }, line };
                continue;
            }
            let Some(t) = self.peek(0) else { break };
            if t.kind != TokKind::Punct {
                break;
            }
            let Some(prec) = Self::binop_prec(&t.text) else { break };
            if prec < min_prec {
                break;
            }
            let op = t.text.clone();
            let line = lhs.line;
            self.bump();
            let rhs = self.binary_expr(prec + 1, struct_lit);
            lhs = Expr {
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                line,
            };
        }
        lhs
    }

    /// Type text after `as`: a path with generics, `&`/`*` prefixes —
    /// stops before any token that must belong to the enclosing
    /// expression.
    fn cast_type_text(&mut self) -> String {
        let mut out = String::new();
        // Prefixes.
        while self.at("&") || self.at("*") {
            out.push_str(&self.bump().map(|t| t.text.clone()).unwrap_or_default());
        }
        self.eat_kw("mut");
        self.eat_kw("const");
        loop {
            if self.peek(0).is_some_and(|t| t.kind == TokKind::Ident && t.text != "as") {
                let id = self.eat_ident().unwrap_or_default();
                if id == "dyn" || id == "impl" {
                    out.push_str(&id);
                    out.push(' ');
                    continue;
                }
                out.push_str(&id);
            } else {
                break;
            }
            if self.at("<") {
                // Generic args on a cast target: skip them.
                self.skip_generics();
            }
            if self.at("::") {
                self.bump();
                out.push_str("::");
                continue;
            }
            break;
        }
        out
    }

    fn unary_expr(&mut self, struct_lit: bool) -> Expr {
        let line = self.line();
        for op in ["-", "!", "*", "&&", "&"] {
            if self.at(op) {
                self.bump();
                if op == "&" || op == "&&" {
                    self.eat_kw("mut");
                }
                let inner = self.unary_expr(struct_lit);
                // `&&x` is two borrows.
                let kind = ExprKind::Unary { op: op.into(), expr: Box::new(inner) };
                return Expr { kind, line };
            }
        }
        self.postfix_expr(struct_lit)
    }

    fn postfix_expr(&mut self, struct_lit: bool) -> Expr {
        let mut expr = self.primary_expr(struct_lit);
        loop {
            if self.at("?") {
                let line = expr.line;
                self.bump();
                expr = Expr { kind: ExprKind::Try(Box::new(expr)), line };
                continue;
            }
            if self.at(".") {
                let line = self.line();
                self.bump();
                if self.eat_kw("await") {
                    continue; // postfix await: transparent
                }
                // Tuple index (`x.0`, and the lexer may merge `x.0.1`'s
                // `0.1` — treat any numeric as a field).
                if self.peek(0).is_some_and(|t| matches!(t.kind, TokKind::NumLit { .. })) {
                    let name = self.bump().map(|t| t.text.clone()).unwrap_or_default();
                    let el = expr.line;
                    expr = Expr {
                        kind: ExprKind::Field { base: Box::new(expr), name },
                        line: el,
                    };
                    continue;
                }
                let Some(name) = self.eat_ident() else {
                    // `.` with nothing usable after it: opaque hole.
                    expr = Expr { kind: ExprKind::Opaque, line };
                    continue;
                };
                // Turbofish on a method: `iter.collect::<Vec<_>>()`.
                if self.at("::") {
                    self.bump();
                    self.skip_generics();
                }
                let el = expr.line;
                if self.at("(") {
                    let args = self.call_args();
                    expr = Expr {
                        kind: ExprKind::MethodCall { recv: Box::new(expr), method: name, args },
                        line: el,
                    };
                } else {
                    expr = Expr {
                        kind: ExprKind::Field { base: Box::new(expr), name },
                        line: el,
                    };
                }
                continue;
            }
            if self.at("(") {
                let args = self.call_args();
                let el = expr.line;
                expr = Expr {
                    kind: ExprKind::Call { callee: Box::new(expr), args },
                    line: el,
                };
                continue;
            }
            if self.at("[") {
                self.bump();
                let index = self.expr(true);
                self.eat("]");
                let el = expr.line;
                expr = Expr {
                    kind: ExprKind::Index { base: Box::new(expr), index: Box::new(index) },
                    line: el,
                };
                continue;
            }
            break;
        }
        expr
    }

    /// Parses `(a, b, …)` call arguments (cursor on `(`).
    fn call_args(&mut self) -> Vec<Expr> {
        self.eat("(");
        let mut args = Vec::new();
        while !self.at_eof() && !self.at(")") {
            let before = self.pos;
            args.push(self.expr(true));
            if self.pos == before {
                self.bump();
            }
            if !self.eat(",") {
                break;
            }
        }
        self.eat(")");
        args
    }

    fn primary_expr(&mut self, struct_lit: bool) -> Expr {
        let line = self.line();
        let Some(t) = self.peek(0) else {
            return Expr { kind: ExprKind::Opaque, line };
        };
        match t.kind {
            TokKind::NumLit { .. } | TokKind::StrLit | TokKind::CharLit => {
                self.bump();
                Expr { kind: ExprKind::Lit, line }
            }
            TokKind::Lifetime => {
                // Loop label `'a: loop { … }` — consume label + colon,
                // continue with the labeled expression.
                self.bump();
                self.eat(":");
                self.primary_expr(struct_lit)
            }
            TokKind::Punct => match t.text.as_str() {
                "(" => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut trailing_comma = false;
                    while !self.at_eof() && !self.at(")") {
                        let before = self.pos;
                        elems.push(self.expr(true));
                        if self.pos == before {
                            self.bump();
                        }
                        trailing_comma = self.eat(",");
                        if !trailing_comma {
                            break;
                        }
                    }
                    self.eat(")");
                    if elems.len() == 1 && !trailing_comma {
                        elems.pop().map_or(Expr { kind: ExprKind::Opaque, line }, |e| e)
                    } else {
                        Expr { kind: ExprKind::Tuple(elems), line }
                    }
                }
                "[" => {
                    self.bump();
                    let mut elems = Vec::new();
                    let mut repeat_len = None;
                    while !self.at_eof() && !self.at("]") {
                        let before = self.pos;
                        let e = self.expr(true);
                        if self.eat(";") {
                            repeat_len = Some(Box::new(self.expr(true)));
                            elems.push(e);
                            break;
                        }
                        elems.push(e);
                        if self.pos == before {
                            self.bump();
                        }
                        if !self.eat(",") {
                            break;
                        }
                    }
                    self.eat("]");
                    match (elems.len(), repeat_len) {
                        (1, Some(len)) => {
                            let elem = elems.pop().map(Box::new);
                            Expr {
                                kind: ExprKind::Repeat {
                                    elem: elem.unwrap_or_else(|| {
                                        Box::new(Expr { kind: ExprKind::Opaque, line })
                                    }),
                                    len,
                                },
                                line,
                            }
                        }
                        _ => Expr { kind: ExprKind::Array(elems), line },
                    }
                }
                "{" => Expr { kind: ExprKind::Block(self.block()), line },
                "|" | "||" => self.closure_expr(line),
                "<" => {
                    // Qualified path `<T as Trait>::f(…)`: skip the
                    // bracket, keep the path tail.
                    self.skip_generics();
                    let mut segs = vec!["<qualified>".to_string()];
                    while self.at("::") {
                        self.bump();
                        if self.at("<") {
                            self.skip_generics();
                            continue;
                        }
                        if let Some(id) = self.eat_ident() {
                            segs.push(id);
                        } else {
                            break;
                        }
                    }
                    Expr { kind: ExprKind::Path(segs), line }
                }
                _ => {
                    self.bump();
                    Expr { kind: ExprKind::Opaque, line }
                }
            },
            TokKind::Ident => match t.text.as_str() {
                "if" => self.if_expr(line),
                "match" => self.match_expr(line),
                "loop" => {
                    self.bump();
                    let body = if self.at("{") { self.block() } else { Block::default() };
                    Expr { kind: ExprKind::Loop { head: None, body }, line }
                }
                "while" => {
                    self.bump();
                    if self.eat_kw("let") {
                        self.pattern_text(&["="]);
                        self.eat("=");
                    }
                    let head = self.expr(false);
                    let body = if self.at("{") { self.block() } else { Block::default() };
                    Expr { kind: ExprKind::Loop { head: Some(Box::new(head)), body }, line }
                }
                "for" => {
                    self.bump();
                    self.pattern_text(&["in"]);
                    self.eat_kw("in");
                    let head = self.expr(false);
                    let body = if self.at("{") { self.block() } else { Block::default() };
                    Expr { kind: ExprKind::Loop { head: Some(Box::new(head)), body }, line }
                }
                "unsafe" => {
                    self.bump();
                    if self.at("{") {
                        Expr { kind: ExprKind::Block(self.block()), line }
                    } else {
                        Expr { kind: ExprKind::Opaque, line }
                    }
                }
                "return" => {
                    self.bump();
                    let arg = if self.expr_follows() {
                        Some(Box::new(self.expr(struct_lit)))
                    } else {
                        None
                    };
                    Expr { kind: ExprKind::Return(arg), line }
                }
                "break" => {
                    self.bump();
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    if self.expr_follows() {
                        self.expr(struct_lit);
                    }
                    Expr { kind: ExprKind::Jump, line }
                }
                "continue" => {
                    self.bump();
                    if self.peek(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                        self.bump();
                    }
                    Expr { kind: ExprKind::Jump, line }
                }
                "move" => {
                    self.bump();
                    if self.at("|") || self.at("||") {
                        self.closure_expr(line)
                    } else {
                        Expr { kind: ExprKind::Opaque, line }
                    }
                }
                _ => self.path_or_macro_or_struct(line, struct_lit),
            },
        }
    }

    /// Whether the next token can begin an expression (for optional
    /// `return`/`break` arguments).
    fn expr_follows(&self) -> bool {
        match self.peek(0) {
            None => false,
            Some(t) => match t.kind {
                TokKind::Punct => !matches!(
                    t.text.as_str(),
                    ";" | ")" | "]" | "}" | "," | "=>" | "?" | "." | "=="
                ),
                TokKind::Ident => !matches!(t.text.as_str(), "else"),
                _ => true,
            },
        }
    }

    fn closure_expr(&mut self, line: u32) -> Expr {
        let mut params = Vec::new();
        if self.eat("||") {
            // zero-parameter closure
        } else if self.eat("|") {
            while !self.at_eof() && !self.at("|") {
                self.skip_attributes();
                let pat = self.pattern_text(&[":", ",", "|"]);
                if self.eat(":") {
                    self.type_text(&[",", "|"]);
                }
                params.extend(bound_names(&pat));
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("|");
            if self.eat("->") {
                self.type_text(&["{"]);
            }
        }
        let body = self.expr(true);
        Expr { kind: ExprKind::Closure { params, body: Box::new(body) }, line }
    }

    fn if_expr(&mut self, line: u32) -> Expr {
        self.bump(); // if
        if self.eat_kw("let") {
            self.pattern_text(&["="]);
            self.eat("=");
        }
        let cond = self.expr(false);
        let then_block = if self.at("{") { self.block() } else { Block::default() };
        let else_branch = if self.eat_kw("else") {
            if self.at_kw("if") {
                let l = self.line();
                Some(Box::new(self.if_expr(l)))
            } else if self.at("{") {
                let l = self.line();
                Some(Box::new(Expr { kind: ExprKind::Block(self.block()), line: l }))
            } else {
                None
            }
        } else {
            None
        };
        Expr {
            kind: ExprKind::If { cond: Box::new(cond), then_block, else_branch },
            line,
        }
    }

    fn match_expr(&mut self, line: u32) -> Expr {
        self.bump(); // match
        let scrutinee = self.expr(false);
        let mut arms = Vec::new();
        if self.eat("{") {
            while !self.at_eof() && !self.at("}") {
                self.skip_attributes();
                let pat = self.pattern_text(&["=>", "if"]);
                let guard = if self.eat_kw("if") {
                    let g = self.expr(false);
                    Some(g)
                } else {
                    None
                };
                if !self.eat("=>") {
                    // Malformed arm: recover by skipping one token.
                    self.bump();
                    continue;
                }
                let body = self.expr(true);
                self.eat(",");
                arms.push(Arm { pat, guard, body });
            }
            self.eat("}");
        }
        Expr { kind: ExprKind::Match { scrutinee: Box::new(scrutinee), arms }, line }
    }

    /// A path, optionally continuing as a macro call (`path!…`) or a
    /// struct literal (`Path { … }` when allowed).
    fn path_or_macro_or_struct(&mut self, line: u32, struct_lit: bool) -> Expr {
        let mut segs = Vec::new();
        if let Some(id) = self.eat_ident() {
            segs.push(id);
        }
        loop {
            if self.at("::") {
                self.bump();
                if self.at("<") {
                    self.skip_generics(); // turbofish
                    continue;
                }
                if let Some(id) = self.eat_ident() {
                    segs.push(id);
                    continue;
                }
                break;
            }
            break;
        }
        if self.at("!") && !self.peek(1).map(|t| t.text == "=").unwrap_or(false) {
            // Macro call. (`!=` lexes as one token, so a plain `!`
            // here is genuinely a macro bang.)
            self.bump();
            return self.macro_call(segs.join("::"), line);
        }
        if struct_lit && self.at("{") && self.looks_like_struct_lit() {
            self.bump(); // {
            let mut fields = Vec::new();
            while !self.at_eof() && !self.at("}") {
                self.skip_attributes();
                if self.at("..") {
                    self.bump();
                    let base = self.expr(true);
                    fields.push(("..".into(), base));
                    break;
                }
                let Some(name) = self.eat_ident() else {
                    self.bump();
                    continue;
                };
                let value = if self.eat(":") {
                    self.expr(true)
                } else {
                    // Shorthand `Struct { x }`.
                    Expr { kind: ExprKind::Path(vec![name.clone()]), line: self.prev_line() }
                };
                fields.push((name, value));
                if !self.eat(",") {
                    break;
                }
            }
            self.eat("}");
            return Expr { kind: ExprKind::StructLit { path: segs, fields }, line };
        }
        Expr { kind: ExprKind::Path(segs), line }
    }

    /// Distinguishes `Path { field: …, }` struct literals from a path
    /// followed by a block. Heuristic lookahead at the tokens after
    /// `{`: an ident followed by `:`/`,`/`}` (or `..`) is a literal.
    fn looks_like_struct_lit(&self) -> bool {
        let Some(t1) = self.peek(1) else { return false };
        if t1.kind == TokKind::Punct && t1.text == "}" {
            return true; // `Path {}`
        }
        if t1.kind == TokKind::Punct && t1.text == ".." {
            return true; // `Path { ..base }`
        }
        if t1.kind == TokKind::Ident {
            if let Some(t2) = self.peek(2) {
                if t2.kind == TokKind::Punct && matches!(t2.text.as_str(), ":" | "," | "}") {
                    // `Path { name:` / `Path { name,` / `Path { name }`
                    // — but `Path { name:: …` is a block starting with
                    // a path (the lexer merges `::`, so `:` vs `::` is
                    // already disambiguated).
                    return true;
                }
            }
        }
        false
    }

    /// Parses a macro invocation's delimited arguments. Comma- and
    /// semicolon-separated expressions are parsed best-effort; tokens
    /// that do not form expressions are consumed opaquely.
    fn macro_call(&mut self, path: String, line: u32) -> Expr {
        let close = if self.eat("(") {
            ")"
        } else if self.eat("[") {
            "]"
        } else if self.eat("{") {
            "}"
        } else {
            return Expr { kind: ExprKind::MacroCall { path, args: Vec::new(), semi_form: false }, line };
        };
        let mut args = Vec::new();
        let mut semi_form = false;
        while !self.at_eof() && !self.at(close) {
            let before = self.pos;
            args.push(self.expr(true));
            if self.eat(";") {
                semi_form = true;
                continue;
            }
            if self.eat(",") {
                continue;
            }
            if self.pos == before {
                self.bump(); // opaque token soup inside the macro
            } else if !self.at(close) {
                // The expression parse stopped mid-stream (macro-only
                // syntax like `=>` in matches!): skip one token and
                // keep scanning for separators.
                self.bump();
            }
        }
        self.eat(close);
        Expr { kind: ExprKind::MacroCall { path, args, semi_form }, line }
    }
}

// ---- traversal helpers ----------------------------------------------------

/// Depth-first walk over every expression in a block, including
/// closure bodies, arm bodies, and nested blocks.
pub fn walk_block_exprs<'e>(block: &'e Block, f: &mut impl FnMut(&'e Expr)) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    walk_expr(e, f);
                }
                if let Some(b) = else_block {
                    walk_block_exprs(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr(expr, f),
            Stmt::Item(item) => walk_item_exprs(item, f),
        }
    }
}

/// Depth-first walk over every expression in an item (fn bodies,
/// nested modules, impl/trait members).
pub fn walk_item_exprs<'e>(item: &'e Item, f: &mut impl FnMut(&'e Expr)) {
    match &item.kind {
        ItemKind::Fn(func) => {
            if let Some(body) = &func.body {
                walk_block_exprs(body, f);
            }
        }
        ItemKind::Mod(items) | ItemKind::Trait(items) | ItemKind::Impl { items, .. } => {
            for it in items {
                walk_item_exprs(it, f);
            }
        }
        _ => {}
    }
}

/// Depth-first walk over one expression tree.
pub fn walk_expr<'e>(expr: &'e Expr, f: &mut impl FnMut(&'e Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Call { callee, args } => {
            walk_expr(callee, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr(recv, f);
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::Field { base, .. } => walk_expr(base, f),
        ExprKind::Index { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        ExprKind::Unary { expr: e, .. } | ExprKind::Try(e) | ExprKind::Cast { expr: e, .. } => {
            walk_expr(e, f)
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        ExprKind::Closure { body, .. } => walk_expr(body, f),
        ExprKind::If { cond, then_block, else_branch } => {
            walk_expr(cond, f);
            walk_block_exprs(then_block, f);
            if let Some(e) = else_branch {
                walk_expr(e, f);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr(g, f);
                }
                walk_expr(&arm.body, f);
            }
        }
        ExprKind::Loop { head, body } => {
            if let Some(h) = head {
                walk_expr(h, f);
            }
            walk_block_exprs(body, f);
        }
        ExprKind::Block(b) => walk_block_exprs(b, f),
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                walk_expr(e, f);
            }
        }
        ExprKind::Repeat { elem, len } => {
            walk_expr(elem, f);
            walk_expr(len, f);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_expr(e, f);
            }
        }
        ExprKind::Return(Some(e)) => walk_expr(e, f),
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                walk_expr(e, f);
            }
            if let Some(e) = hi {
                walk_expr(e, f);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Return(None)
        | ExprKind::Jump
        | ExprKind::Opaque => {}
    }
}

/// Calls `f` on `block` and on every block nested at any depth inside
/// it — block expressions, `if`/`loop` bodies, `let … else` blocks,
/// and fn-local fn bodies — each exactly once.
pub fn walk_blocks<'e>(block: &'e Block, f: &mut impl FnMut(&'e Block)) {
    f(block);
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { init, else_block, .. } => {
                if let Some(e) = init {
                    walk_expr_blocks(e, f);
                }
                if let Some(b) = else_block {
                    walk_blocks(b, f);
                }
            }
            Stmt::Expr { expr, .. } => walk_expr_blocks(expr, f),
            // Item boundary: a fn-local item's body belongs to that
            // item (surfaced by [`collect_fns`]), not to this block.
            Stmt::Item(_) => {}
        }
    }
}

fn walk_expr_blocks<'e>(expr: &'e Expr, f: &mut impl FnMut(&'e Block)) {
    match &expr.kind {
        ExprKind::Block(b) => walk_blocks(b, f),
        ExprKind::If { cond, then_block, else_branch } => {
            walk_expr_blocks(cond, f);
            walk_blocks(then_block, f);
            if let Some(e) = else_branch {
                walk_expr_blocks(e, f);
            }
        }
        ExprKind::Loop { head, body } => {
            if let Some(h) = head {
                walk_expr_blocks(h, f);
            }
            walk_blocks(body, f);
        }
        ExprKind::Match { scrutinee, arms } => {
            walk_expr_blocks(scrutinee, f);
            for arm in arms {
                if let Some(g) = &arm.guard {
                    walk_expr_blocks(g, f);
                }
                walk_expr_blocks(&arm.body, f);
            }
        }
        ExprKind::Call { callee, args } => {
            walk_expr_blocks(callee, f);
            for a in args {
                walk_expr_blocks(a, f);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            walk_expr_blocks(recv, f);
            for a in args {
                walk_expr_blocks(a, f);
            }
        }
        ExprKind::Field { base, .. } => walk_expr_blocks(base, f),
        ExprKind::Index { base, index } => {
            walk_expr_blocks(base, f);
            walk_expr_blocks(index, f);
        }
        ExprKind::Unary { expr: e, .. } | ExprKind::Try(e) | ExprKind::Cast { expr: e, .. } => {
            walk_expr_blocks(e, f)
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            walk_expr_blocks(lhs, f);
            walk_expr_blocks(rhs, f);
        }
        ExprKind::Closure { body, .. } => walk_expr_blocks(body, f),
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            for e in es {
                walk_expr_blocks(e, f);
            }
        }
        ExprKind::Repeat { elem, len } => {
            walk_expr_blocks(elem, f);
            walk_expr_blocks(len, f);
        }
        ExprKind::MacroCall { args, .. } => {
            for a in args {
                walk_expr_blocks(a, f);
            }
        }
        ExprKind::StructLit { fields, .. } => {
            for (_, e) in fields {
                walk_expr_blocks(e, f);
            }
        }
        ExprKind::Return(Some(e)) => walk_expr_blocks(e, f),
        ExprKind::Range { lo, hi } => {
            if let Some(e) = lo {
                walk_expr_blocks(e, f);
            }
            if let Some(e) = hi {
                walk_expr_blocks(e, f);
            }
        }
        ExprKind::Path(_)
        | ExprKind::Lit
        | ExprKind::Return(None)
        | ExprKind::Jump
        | ExprKind::Opaque => {}
    }
}

/// Collects every `fn` in a file with its enclosing context: the impl
/// self type (if any) and the item itself.
pub fn collect_fns<'f>(file: &'f File) -> Vec<FnRef<'f>> {
    let mut out = Vec::new();
    for item in &file.items {
        collect_fns_in(item, None, &mut out);
    }
    out
}

/// One `fn` with its enclosing-impl context.
#[derive(Debug, Clone, Copy)]
pub struct FnRef<'f> {
    /// The fn's item node.
    pub item: &'f Item,
    /// The parsed fn payload.
    pub func: &'f FnItem,
    /// Self type of the enclosing `impl`, if inside one.
    pub self_ty: Option<&'f str>,
}

fn collect_fns_in<'f>(item: &'f Item, self_ty: Option<&'f str>, out: &mut Vec<FnRef<'f>>) {
    match &item.kind {
        ItemKind::Fn(func) => {
            out.push(FnRef { item, func, self_ty });
            // Fn-local items (`fn helper() { … }` inside a body) are
            // fns in their own right.
            if let Some(body) = &func.body {
                collect_fns_in_block(body, out);
            }
        }
        ItemKind::Mod(items) | ItemKind::Trait(items) => {
            for it in items {
                collect_fns_in(it, self_ty, out);
            }
        }
        ItemKind::Impl { self_ty: ty, items, .. } => {
            for it in items {
                collect_fns_in(it, Some(ty.as_str()), out);
            }
        }
        _ => {}
    }
}

fn collect_fns_in_block<'f>(block: &'f Block, out: &mut Vec<FnRef<'f>>) {
    walk_blocks(block, &mut |b| {
        for stmt in &b.stmts {
            if let Stmt::Item(item) = stmt {
                collect_fns_in(item, None, out);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> Vec<String> {
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        collect_fns(&file).iter().map(|f| f.item.name.clone()).collect()
    }

    #[test]
    fn items_and_spans() {
        let src = "mod a {\n  pub fn f(x: u32) -> u32 { x }\n}\nstruct S { x: u32 }\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        assert_eq!(file.items.len(), 2);
        assert_eq!(file.items[0].name, "a");
        assert_eq!((file.items[0].line, file.items[0].end_line), (1, 3));
        assert_eq!(file.items[1].name, "S");
        assert_eq!((file.items[1].line, file.items[1].end_line), (4, 4));
    }

    #[test]
    fn fn_signature_params_and_ret() {
        let file = parse_source(
            "fn g<T: Clone>(a: usize, (b, c): (u32, u32), mut d: Vec<T>) -> Result<u32, E> { a }\n",
        );
        let fns = collect_fns(&file);
        assert_eq!(fns.len(), 1);
        let f = fns[0].func;
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert!(f.ret.starts_with("Result"), "{}", f.ret);
        assert!(f.body.is_some());
    }

    #[test]
    fn impl_blocks_carry_self_type() {
        let src = "impl Wei {\n  fn z(&self) -> u128 { self.0 }\n}\n\
                   impl std::ops::Add for Wei {\n  fn add(self, rhs: Wei) -> Wei { self }\n}\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let fns = collect_fns(&file);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].self_ty, Some("Wei"));
        assert_eq!(fns[1].self_ty, Some("Wei"));
        if let ItemKind::Impl { trait_ty, .. } = &file.items[1].kind {
            assert_eq!(trait_ty.as_deref(), Some("std :: ops :: Add"));
        } else {
            panic!("expected impl");
        }
    }

    #[test]
    fn statement_spines_capture_calls_and_lets() {
        let src = "fn f(buf: &mut B) -> Result<(), E> {\n\
                   let n = buf.try_get_u64_le()? as usize;\n\
                   let mut v = Vec::with_capacity(n);\n\
                   v.push(1);\n\
                   Ok(())\n}\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let fns = collect_fns(&file);
        let body = fns[0].func.body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
        let mut method_calls = Vec::new();
        walk_block_exprs(body, &mut |e| {
            if let ExprKind::MethodCall { method, .. } = &e.kind {
                method_calls.push(method.clone());
            }
        });
        assert_eq!(method_calls, ["try_get_u64_le", "push"]);
    }

    #[test]
    fn match_and_try_are_structured() {
        let src = "fn f(x: R) -> Result<u32, E> {\n\
                   let y = match x { R::A(v) => v, _ => other(x)? };\n\
                   Ok(y)\n}\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let mut saw_match = false;
        let mut saw_try = false;
        walk_item_exprs(&file.items[0], &mut |e| match &e.kind {
            ExprKind::Match { arms, .. } => {
                saw_match = true;
                assert_eq!(arms.len(), 2);
            }
            ExprKind::Try(_) => saw_try = true,
            _ => {}
        });
        assert!(saw_match && saw_try);
    }

    #[test]
    fn closures_and_struct_literals() {
        let src = "fn f() -> S {\n\
                   let g = |a: u32, b| a + b;\n\
                   items.iter().map(|x| x * 2).sum::<u32>();\n\
                   S { x: 1, y }\n}\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let mut closures = 0;
        let mut lit_fields = Vec::new();
        walk_item_exprs(&file.items[0], &mut |e| match &e.kind {
            ExprKind::Closure { .. } => closures += 1,
            ExprKind::StructLit { fields, .. } => {
                lit_fields = fields.iter().map(|(n, _)| n.clone()).collect()
            }
            _ => {}
        });
        assert_eq!(closures, 2);
        assert_eq!(lit_fields, ["x", "y"]);
    }

    #[test]
    fn vec_macro_semi_form_exposes_length() {
        let src = "fn f(n: usize) { let v = vec![0u8; n]; }\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let mut found = false;
        walk_item_exprs(&file.items[0], &mut |e| {
            if let ExprKind::MacroCall { path, args, semi_form } = &e.kind {
                assert_eq!(path, "vec");
                assert!(*semi_form);
                assert_eq!(args.len(), 2);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn if_while_for_heads_do_not_eat_blocks() {
        let src = "fn f(x: u32) -> u32 {\n\
                   if x > 1 { a(); } else if x > 0 { b(); } else { c(); }\n\
                   while x < 10 { d(); }\n\
                   for i in 0..x { e(i); }\n\
                   loop { break; }\n\
                   x\n}\n";
        assert_eq!(fns(src), ["f"]);
    }

    #[test]
    fn struct_lit_ambiguity_in_condition_position() {
        // `if x { 1 } else { 2 }` must treat `{ 1 }` as the then-block,
        // not a struct literal of type `x`.
        let src = "fn f(x: bool) -> u32 { if x { 1 } else { 2 } }\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        let mut ifs = 0;
        walk_item_exprs(&file.items[0], &mut |e| {
            if matches!(e.kind, ExprKind::If { .. }) {
                ifs += 1;
            }
        });
        assert_eq!(ifs, 1);
    }

    #[test]
    fn let_else_and_nested_items_parse() {
        let src = "fn f(o: Option<u32>) -> u32 {\n\
                   let Some(v) = o else { return 0; };\n\
                   fn helper() -> u32 { 7 }\n\
                   v + helper()\n}\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty());
        assert_eq!(collect_fns(&file).len(), 2);
    }

    #[test]
    fn generics_lifetimes_and_where_clauses() {
        let src = "impl<'a, A: AccuracyModel> IncrementalEval<'a, A>\n\
                   where A: Clone {\n\
                   pub fn rho_res(&self, i: usize) -> &'a [f64] { &self.rows[i] }\n\
                   }\n";
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        assert_eq!(collect_fns(&file).len(), 1);
    }

    #[test]
    fn bound_names_extraction() {
        assert_eq!(bound_names("x"), ["x"]);
        assert_eq!(bound_names("mut x"), ["x"]);
        assert_eq!(bound_names("(a, mut b)"), ["a", "b"]);
        assert_eq!(bound_names("Some(v)"), ["v"]);
        assert_eq!(bound_names("Event :: Deliver { frame, at }"), ["frame", "at"]);
        assert!(bound_names("_").is_empty());
        assert!(bound_names("Event :: Tick").is_empty());
        // Path segments are not bindings.
        assert!(bound_names("self :: x :: y").len() <= 1);
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for junk in [
            "fn",
            "fn (",
            "impl {{{",
            "let = = =",
            "match { => }",
            ") ] } ;",
            "fn f( -> { if",
            "#[x fn g",
            "r#fn r#struct",
        ] {
            let _ = parse_source(junk); // must not panic or hang
        }
    }
}
