//! Versioned JSON output (`tradefl-lint/v2`) and the in-tree schema
//! checker that CI runs against it.
//!
//! # The v2 contract
//!
//! ```text
//! {
//!   "schema": "tradefl-lint/v2",
//!   "rules": ["allow-span-precision", "bad-allow", …],
//!   "findings": [
//!     {"rule": "…", "file": "crates/…/x.rs", "line": 12, "message": "…"}
//!   ],
//!   "count": 1
//! }
//! ```
//!
//! Invariants the checker enforces (and CI gates on):
//!
//! * top level is an object whose `schema` is exactly `tradefl-lint/v2`;
//! * `rules` lists every known rule id (sorted, deduplicated) so
//!   downstream tooling can detect rule-set drift without running the
//!   binary;
//! * `findings` is an array of objects, each with string `rule`
//!   (drawn from `rules`), `/`-separated string `file`, integer
//!   `line ≥ 1`, and non-empty string `message`;
//! * `count` equals `findings.len()` — a truncated or concatenated
//!   report fails closed.
//!
//! v1 (the old ad-hoc `{"findings": …, "count": …}` shape with no
//! `schema` key) is rejected by the checker; the CLI no longer emits
//! it. Everything here is pure std: the checker carries its own
//! minimal recursive-descent JSON parser rather than a registry dep.

use crate::engine::Finding;

/// One parsed JSON value — just enough structure for the checker.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All JSON numbers; the checker only consumes integral ones.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Key order preserved (duplicates keep the last occurrence on
    /// lookup, like serde's default).
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn get<'v>(&'v self, key: &str) -> Option<&'v Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            // lint:allow(no-float-eq): exact integrality test on a parsed JSON number — 7.5 must not validate as a line number
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }
}

/// Minimal JSON parser: returns the single top-level value or a
/// message describing the first syntax error. No depth limit is needed
/// — the only inputs are lint reports the binary itself produced.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs never appear in our output
                        // (we escape only control chars); map lone
                        // surrogates to U+FFFD rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "non-utf8 string")?;
                let Some(c) = s.chars().next() else {
                    return Err("unterminated string".to_string());
                };
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // [
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(out));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // {
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let val = parse_value(b, pos)?;
        out.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(out));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings in the v2 schema (see the module docs).
pub fn render_v2(findings: &[Finding]) -> String {
    let mut rule_ids: Vec<&str> = crate::rules::RULES.iter().map(|r| r.id).collect();
    rule_ids.sort_unstable();
    let mut out = String::from("{\"schema\":\"tradefl-lint/v2\",\"rules\":[");
    for (i, id) in rule_ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(id);
        out.push('"');
    }
    out.push_str("],\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape(&f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

/// Validates a v2 report. Returns the finding count on success, or the
/// first contract violation. CI feeds the live `--workspace --json`
/// output through this to catch schema drift between the renderer and
/// consumers.
pub fn check_v2(text: &str) -> Result<usize, String> {
    let v = parse(text)?;
    let Value::Obj(_) = &v else {
        return Err("top level is not an object".to_string());
    };
    match v.get("schema").and_then(Value::as_str) {
        Some("tradefl-lint/v2") => {}
        Some(other) => return Err(format!("schema is `{other}`, expected `tradefl-lint/v2`")),
        None => return Err("missing string `schema` key (v1 output?)".to_string()),
    }
    let Some(Value::Arr(rules)) = v.get("rules") else {
        return Err("missing `rules` array".to_string());
    };
    let mut rule_ids = Vec::new();
    for r in rules {
        let id = r.as_str().ok_or("non-string entry in `rules`")?;
        rule_ids.push(id);
    }
    let mut sorted = rule_ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted != rule_ids {
        return Err("`rules` is not sorted and deduplicated".to_string());
    }
    let Some(Value::Arr(findings)) = v.get("findings") else {
        return Err("missing `findings` array".to_string());
    };
    for (i, f) in findings.iter().enumerate() {
        let Value::Obj(_) = f else {
            return Err(format!("findings[{i}] is not an object"));
        };
        let rule = f
            .get("rule")
            .and_then(Value::as_str)
            .ok_or(format!("findings[{i}] missing string `rule`"))?;
        if !rule_ids.contains(&rule) {
            return Err(format!("findings[{i}] rule `{rule}` not in `rules`"));
        }
        let file = f
            .get("file")
            .and_then(Value::as_str)
            .ok_or(format!("findings[{i}] missing string `file`"))?;
        if file.contains('\\') {
            return Err(format!("findings[{i}] file `{file}` is not /-separated"));
        }
        let line = f
            .get("line")
            .and_then(Value::as_u32)
            .ok_or(format!("findings[{i}] missing integer `line`"))?;
        if line < 1 {
            return Err(format!("findings[{i}] line {line} is not 1-based"));
        }
        let message = f
            .get("message")
            .and_then(Value::as_str)
            .ok_or(format!("findings[{i}] missing string `message`"))?;
        if message.is_empty() {
            return Err(format!("findings[{i}] has an empty message"));
        }
    }
    let count = v
        .get("count")
        .and_then(Value::as_u32)
        .ok_or("missing integer `count`")?;
    if count as usize != findings.len() {
        return Err(format!(
            "count {count} does not match findings.len() {}",
            findings.len()
        ));
    }
    Ok(findings.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &str, file: &str, line: u32) -> Finding {
        Finding {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: format!("{rule} fired"),
        }
    }

    #[test]
    fn rendered_v2_round_trips_through_the_checker() {
        let findings = vec![
            finding("no-wallclock", "crates/core/src/x.rs", 3),
            finding("unused-allow", "crates/core/src/y.rs", 9),
        ];
        let text = render_v2(&findings);
        assert_eq!(check_v2(&text), Ok(2));
    }

    #[test]
    fn empty_report_is_valid() {
        assert_eq!(check_v2(&render_v2(&[])), Ok(0));
    }

    #[test]
    fn v1_shape_is_rejected() {
        let v1 = "{\"findings\":[],\"count\":0}";
        let err = check_v2(v1).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn count_mismatch_fails_closed() {
        let text = render_v2(&[finding("no-wallclock", "a.rs", 1)]);
        let broken = text.replace("\"count\":1", "\"count\":7");
        assert!(check_v2(&broken).unwrap_err().contains("count"));
    }

    #[test]
    fn unknown_rule_in_findings_is_rejected() {
        let text = render_v2(&[finding("made-up-rule", "a.rs", 1)]);
        let err = check_v2(&text).unwrap_err();
        assert!(err.contains("made-up-rule"), "{err}");
    }

    #[test]
    fn escapes_survive_the_round_trip() {
        let f = Finding {
            rule: "no-wallclock".to_string(),
            file: "crates/core/src/x.rs".to_string(),
            line: 2,
            message: "quote \" backslash \\ newline \n tab \t control \u{1}".to_string(),
        };
        let text = render_v2(&[f.clone()]);
        let v = parse(&text).unwrap();
        let Some(Value::Arr(fs)) = v.get("findings") else { panic!() };
        assert_eq!(fs[0].get("message").and_then(Value::as_str), Some(f.message.as_str()));
    }

    #[test]
    fn parser_handles_nested_values_and_rejects_trailing_garbage() {
        assert!(parse("{\"a\": [1, {\"b\": null}, true]}").is_ok());
        assert!(parse("{} extra").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1, 2").is_err());
    }
}
