//! The `tradefl-lint` binary.
//!
//! ```text
//! tradefl-lint --workspace [--root DIR] [--json]
//! tradefl-lint [--json] FILE…
//! tradefl-lint --explain RULE-ID
//! tradefl-lint --list
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O
//! error — so `scripts/ci.sh` can gate on it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tradefl_lint::rules::RULES;
use tradefl_lint::{engine, Finding};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tradefl-lint --workspace [--root DIR] [--json]\n\
         \x20      tradefl-lint [--json] FILE...\n\
         \x20      tradefl-lint --explain RULE-ID\n\
         \x20      tradefl-lint --list"
    );
    ExitCode::from(2)
}

/// Default workspace root: this crate lives at `<root>/crates/lint`.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn report(findings: &[Finding], json: bool) -> ExitCode {
    if json {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
                json_escape(&f.rule),
                json_escape(&f.file),
                f.line,
                json_escape(&f.message)
            ));
        }
        out.push_str(&format!("],\"count\":{}}}", findings.len()));
        println!("{out}");
    } else {
        for f in findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            eprintln!("tradefl-lint: clean");
        } else {
            eprintln!(
                "tradefl-lint: {} finding(s) — see `tradefl-lint --explain <rule-id>`",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain(id: &str) -> ExitCode {
    match tradefl_lint::rules::rule(id) {
        Some(r) => {
            println!("{} — {}\n\n{}", r.id, r.summary, r.rationale);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("tradefl-lint: unknown rule `{id}`; known rules:");
            for r in RULES {
                eprintln!("  {}", r.id);
            }
            ExitCode::from(2)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut workspace = false;
    let mut root = default_root();
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--explain" => {
                return match it.next() {
                    Some(id) => explain(id),
                    None => usage(),
                };
            }
            "--list" => {
                for r in RULES {
                    println!("{:18} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        return match engine::lint_workspace(&root) {
            Ok(findings) => report(&findings, json),
            Err(e) => {
                eprintln!("tradefl-lint: {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }
    if files.is_empty() {
        return usage();
    }
    let mut findings = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tradefl-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        if rel.ends_with("Cargo.toml") {
            findings.extend(engine::lint_manifest(&rel, &text));
        } else {
            findings.extend(engine::lint_source(&rel, &text));
        }
    }
    report(&findings, json)
}
