//! The `tradefl-lint` binary.
//!
//! ```text
//! tradefl-lint --workspace [--root DIR] [--json] [--diff BASE]
//! tradefl-lint [--json] FILE…
//! tradefl-lint --check-json FILE
//! tradefl-lint --explain RULE-ID
//! tradefl-lint --list
//! ```
//!
//! `--json` emits the versioned `tradefl-lint/v2` report (see
//! [`tradefl_lint::json`]); `--check-json` validates a saved report
//! against that schema, which is how `scripts/ci.sh` guards the
//! contract. `--diff BASE` (workspace mode only) restricts findings to
//! lines changed since the git ref `BASE` — allow-meta findings
//! (`bad-allow`, `unused-allow`, `allow-span-precision`) are kept
//! regardless, since a diff that deletes a violation is exactly when a
//! stale allow appears without its own line changing.
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O
//! error — so `scripts/ci.sh` can gate on it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tradefl_lint::rules::RULES;
use tradefl_lint::{diff, engine, json, Finding};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tradefl-lint --workspace [--root DIR] [--json] [--diff BASE]\n\
         \x20      tradefl-lint [--json] FILE...\n\
         \x20      tradefl-lint --check-json FILE\n\
         \x20      tradefl-lint --explain RULE-ID\n\
         \x20      tradefl-lint --list"
    );
    ExitCode::from(2)
}

/// Default workspace root: this crate lives at `<root>/crates/lint`.
fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn report(findings: &[Finding], json: bool) -> ExitCode {
    if json {
        println!("{}", json::render_v2(findings));
    } else {
        for f in findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if findings.is_empty() {
            eprintln!("tradefl-lint: clean");
        } else {
            eprintln!(
                "tradefl-lint: {} finding(s) — see `tradefl-lint --explain <rule-id>`",
                findings.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain(id: &str) -> ExitCode {
    match tradefl_lint::rules::rule(id) {
        Some(r) => {
            println!("{} — {}\n\n{}", r.id, r.summary, r.rationale);
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("tradefl-lint: unknown rule `{id}`; known rules:");
            for r in RULES {
                eprintln!("  {}", r.id);
            }
            ExitCode::from(2)
        }
    }
}

fn check_json(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tradefl-lint: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match json::check_v2(&text) {
        Ok(n) => {
            eprintln!("tradefl-lint: {path}: valid tradefl-lint/v2 report, {n} finding(s)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tradefl-lint: {path}: schema violation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The allow-meta rules stay in a `--diff` report even off changed
/// lines: deleting a violation elsewhere is exactly how an allow goes
/// stale without its own line appearing in the diff.
fn is_allow_meta(rule: &str) -> bool {
    matches!(rule, "bad-allow" | "unused-allow" | "allow-span-precision")
}

/// Runs `git diff BASE -U0` in `root` and keeps only findings on
/// changed lines (plus allow-meta findings).
fn filter_to_diff(findings: Vec<Finding>, root: &Path, base: &str) -> Result<Vec<Finding>, String> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--no-color", "-U0", base])
        .output()
        .map_err(|e| format!("failed to run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    let changed = diff::changed_lines(&String::from_utf8_lossy(&out.stdout));
    Ok(findings
        .into_iter()
        .filter(|f| is_allow_meta(&f.rule) || diff::touches(&changed, &f.file, f.line))
        .collect())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut workspace = false;
    let mut root = default_root();
    let mut diff_base: Option<String> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--diff" => match it.next() {
                Some(base) => diff_base = Some(base.clone()),
                None => return usage(),
            },
            "--check-json" => {
                return match it.next() {
                    Some(path) => check_json(path),
                    None => usage(),
                };
            }
            "--explain" => {
                return match it.next() {
                    Some(id) => explain(id),
                    None => usage(),
                };
            }
            "--list" => {
                for r in RULES {
                    println!("{:24} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(),
            other if other.starts_with('-') => return usage(),
            other => files.push(PathBuf::from(other)),
        }
    }

    if workspace {
        let findings = match engine::lint_workspace(&root) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("tradefl-lint: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        let findings = match diff_base {
            Some(base) => match filter_to_diff(findings, &root, &base) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("tradefl-lint: {e}");
                    return ExitCode::from(2);
                }
            },
            None => findings,
        };
        return report(&findings, json);
    }
    if diff_base.is_some() {
        eprintln!("tradefl-lint: --diff requires --workspace");
        return usage();
    }
    if files.is_empty() {
        return usage();
    }
    let mut findings = Vec::new();
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tradefl-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = path.to_string_lossy().replace('\\', "/");
        if rel.ends_with("Cargo.toml") {
            findings.extend(engine::lint_manifest(&rel, &text));
        } else {
            findings.extend(engine::lint_source(&rel, &text));
        }
    }
    report(&findings, json)
}
