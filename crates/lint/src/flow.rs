//! Intra-procedural dataflow over parsed fn bodies, with one level of
//! call-through via per-fn summaries.
//!
//! Three semantic analyses live here:
//!
//! * **Wire-length taint** (`unbounded-wire-alloc`): a value produced
//!   by `try_get_*`/`decode_*` is *tainted*; taint propagates through
//!   `let` bindings, assignments, `?`, `as` casts, arithmetic, method
//!   chains, and `match` arms (a binding in an arm pattern is tainted
//!   when the scrutinee is). Flowing through `bounded_count(…)` or a
//!   `.min(…)`/`.clamp(…)` call *sanitizes*. A tainted value reaching
//!   `with_capacity(…)`, `.reserve(…)`, or `vec![_; n]` is a finding —
//!   an attacker-declared length turning into an attacker-sized
//!   allocation. Summaries give one level of call-through: calling a
//!   fn whose return is wire-tainted taints the result, and passing a
//!   tainted value to a parameter the callee feeds into an allocation
//!   fires at the call site.
//! * **Money arithmetic** (`no-unchecked-money-arith`): raw `+`/`-`/`*`
//!   (and compound assignment) where an operand is money-typed —
//!   `Wei`/`Fixed` by declared type, a `balance`/`nonce`/`amount`/…
//!   named field or binding, or the wrapped `.0` inside
//!   `impl Wei`/`impl Fixed`.
//! * **Unused `Result`** (`unused-result`): a statement-position call
//!   whose callee — resolved against the workspace signature index —
//!   always returns `Result`, with no `?`, `let`, or `match` consuming
//!   it.
//!
//! All three are heuristic (no type inference, name-based call
//! resolution); false positives carry a reasoned `lint:allow`, which
//! is the designed escape hatch.

use crate::parse::{bound_names, Block, Expr, ExprKind, File, FnRef, Stmt};
use crate::rules::RawFinding;
use std::collections::{BTreeMap, BTreeSet};

/// Method names that sanitize a tainted length (cap it to a bound).
/// `len` belongs here because the length of a *materialized*
/// collection is bounded by bytes actually received — the hazard is an
/// attacker-declared count allocated before the data exists, not
/// allocation proportional to data in hand.
const SANITIZER_METHODS: &[&str] = &["min", "clamp", "len"];

/// Free/associated fns whose result is a *validated* count.
const SANITIZER_FNS: &[&str] = &["bounded_count"];

/// Name fragments marking a money-carrying binding or field.
const MONEY_NAMES: &[&str] =
    &["balance", "nonce", "amount", "deposit", "fee", "refund", "stake"];

/// Common std method names excluded from `unused-result` name
/// matching: a workspace type may define e.g. `push(…) -> Result<…>`,
/// but a bare `v.push(x)` at a call site is overwhelmingly
/// `Vec::push`, and name-based resolution cannot tell them apart.
const STD_METHOD_NAMES: &[&str] = &[
    "push", "insert", "remove", "get", "take", "replace", "swap", "write", "read", "flush",
    "next", "send", "recv", "parse", "clone", "fmt", "extend", "drain", "clear", "sort",
    "resize", "reserve", "min", "max", "wait", "join", "iter", "into_iter", "finish",
    "expect", "unwrap",
];

/// Per-fn summary: what the workspace index records about one `fn` for
/// one level of call-through.
#[derive(Debug, Default, Clone)]
pub struct FnSummary {
    /// The fn's return value is wire-tainted (a decode source reaches
    /// the tail/`return` expressions unsanitized).
    pub returns_tainted: bool,
    /// Parameter indices that flow, unsanitized, into an allocation
    /// sink inside the body.
    pub params_to_alloc: Vec<usize>,
    /// The declared return type mentions `Result`.
    pub returns_result: bool,
    /// Whether the fn takes a `self` receiver (method vs free fn).
    pub has_self: bool,
    /// How many same-name definitions merged into this slot.
    pub defs: usize,
}

/// Name-keyed summaries for every fn in scope. Same-name fns merge in
/// the direction that limits name-collision damage: `returns_tainted`
/// unions (any decode-returning def taints the call), but
/// `params_to_alloc` *intersects* — a param index fires at call sites
/// only when every definition of that name feeds it into an allocation
/// (two unrelated `restore`s must not cross-contaminate). Likewise,
/// `unused-result` only matches names where *every* definition returns
/// `Result`.
#[derive(Debug, Default)]
pub struct FlowIndex {
    summaries: BTreeMap<String, FnSummary>,
    /// name → (returns-Result count, definition count), split by
    /// receiver kind so free-fn calls and method calls resolve
    /// independently.
    result_fns: BTreeMap<String, (usize, usize)>,
    result_methods: BTreeMap<String, (usize, usize)>,
}

impl FlowIndex {
    /// Builds the index over every fn in the given parsed files.
    pub fn build<'f>(files: impl IntoIterator<Item = &'f File>) -> Self {
        let mut idx = FlowIndex::default();
        for file in files {
            for fr in crate::parse::collect_fns(file) {
                idx.add_fn(&fr);
            }
        }
        idx
    }

    fn add_fn(&mut self, fr: &FnRef<'_>) {
        if fr.item.name.is_empty() {
            return;
        }
        let s = summarize(fr);
        let returns_result = s.returns_result;
        let counts = if s.has_self { &mut self.result_methods } else { &mut self.result_fns };
        let e = counts.entry(fr.item.name.clone()).or_insert((0, 0));
        e.0 += usize::from(returns_result);
        e.1 += 1;
        let slot = self.summaries.entry(fr.item.name.clone()).or_default();
        slot.returns_tainted |= s.returns_tainted;
        slot.returns_result |= s.returns_result;
        slot.has_self |= s.has_self;
        if slot.defs == 0 {
            slot.params_to_alloc = s.params_to_alloc;
        } else {
            slot.params_to_alloc.retain(|p| s.params_to_alloc.contains(p));
        }
        slot.defs += 1;
    }

    fn summary(&self, name: &str) -> Option<&FnSummary> {
        self.summaries.get(name)
    }

    /// Whether every workspace definition of free fn `name` returns
    /// `Result` (and at least one exists).
    fn free_fn_always_result(&self, name: &str) -> bool {
        self.result_fns.get(name).is_some_and(|&(res, total)| res == total && res > 0)
    }

    /// Same for methods, with the std-collision blocklist applied.
    fn method_always_result(&self, name: &str) -> bool {
        !STD_METHOD_NAMES.contains(&name)
            && self.result_methods.get(name).is_some_and(|&(res, total)| res == total && res > 0)
    }
}

// ---- taint machinery ------------------------------------------------------

/// Tainted-variable environment for one fn body (lexical, flow-
/// insensitive across branches: a var tainted on any path stays
/// tainted — conservative in the safe direction).
#[derive(Default)]
struct Env {
    tainted: BTreeSet<String>,
}

/// Emits `unbounded-wire-alloc` findings for sink hits.
struct TaintCtx<'i> {
    index: Option<&'i FlowIndex>,
    findings: Vec<RawFinding>,
}

impl TaintCtx<'_> {
    fn sink_hit(&mut self, line: u32, what: &str, via: &str) {
        self.findings.push(RawFinding {
            rule: "unbounded-wire-alloc",
            line,
            message: format!(
                "wire-derived length reaches {what} {via}: an attacker-declared count becomes \
                 an attacker-sized allocation — validate with bounded_count (or cap with \
                 .min(...)) before allocating"
            ),
        });
    }
}

/// Whether a call name is a wire-decode taint source.
fn is_source_name(name: &str) -> bool {
    name.starts_with("try_get_") || name.starts_with("decode_") || name == "decode"
}

fn path_last(segs: &[String]) -> &str {
    segs.last().map_or("", |s| s.as_str())
}

/// Evaluates taint of one expression, recording sink hits. `env` is
/// mutated by assignments in subexpressions.
fn taint_of(expr: &Expr, env: &mut Env, cx: &mut TaintCtx<'_>) -> bool {
    match &expr.kind {
        ExprKind::Path(segs) => segs.len() == 1 && env.tainted.contains(&segs[0]),
        ExprKind::Lit | ExprKind::Jump | ExprKind::Opaque => false,
        ExprKind::Call { callee, args } => {
            let arg_taints: Vec<bool> =
                args.iter().map(|a| taint_of(a, env, cx)).collect();
            let name = match &callee.kind {
                ExprKind::Path(segs) => path_last(segs).to_string(),
                _ => {
                    taint_of(callee, env, cx);
                    String::new()
                }
            };
            if SANITIZER_FNS.contains(&name.as_str()) {
                return false;
            }
            if name == "with_capacity" {
                if arg_taints.first().copied().unwrap_or(false) {
                    cx.sink_hit(expr.line, "`with_capacity`", "unvalidated");
                }
                return false;
            }
            if let Some(sum) = cx.index.and_then(|i| i.summary(&name)) {
                for &p in &sum.params_to_alloc {
                    if arg_taints.get(p).copied().unwrap_or(false) {
                        cx.sink_hit(
                            expr.line,
                            "an allocation",
                            &format!("through parameter {p} of `{name}`"),
                        );
                    }
                }
                if sum.returns_tainted {
                    return true;
                }
            }
            is_source_name(&name) || arg_taints.into_iter().any(|t| t)
        }
        ExprKind::MethodCall { recv, method, args } => {
            let recv_taint = taint_of(recv, env, cx);
            let arg_taints: Vec<bool> =
                args.iter().map(|a| taint_of(a, env, cx)).collect();
            // Arity disambiguates sanitizers from same-named iterator
            // methods: `.min(bound)`/`.clamp(lo, hi)` cap a value
            // (zero-arg `Iterator::min` does not), while zero-arg
            // `.len()` measures materialized data (`args` non-empty
            // means it is some other fn).
            let sanitizes = match method.as_str() {
                "min" | "clamp" => !args.is_empty(),
                "len" => args.is_empty(),
                _ => false,
            };
            debug_assert!(
                !sanitizes || SANITIZER_METHODS.contains(&method.as_str()),
                "sanitizer arity table drifted from SANITIZER_METHODS"
            );
            if sanitizes {
                return false;
            }
            if method == "reserve" || method == "with_capacity" {
                if arg_taints.first().copied().unwrap_or(false) {
                    cx.sink_hit(expr.line, &format!("`.{method}(…)`"), "unvalidated");
                }
                return false;
            }
            if is_source_name(method) {
                return true;
            }
            if let Some(sum) = cx.index.and_then(|i| i.summary(method)) {
                // Method summaries: parameter 0 in the summary is the
                // receiver; call arguments shift by one.
                for &p in &sum.params_to_alloc {
                    let hit = if p == 0 {
                        recv_taint
                    } else {
                        arg_taints.get(p - 1).copied().unwrap_or(false)
                    };
                    if hit {
                        cx.sink_hit(
                            expr.line,
                            "an allocation",
                            &format!("through `{method}`"),
                        );
                    }
                }
                if sum.returns_tainted {
                    return true;
                }
            }
            recv_taint || arg_taints.into_iter().any(|t| t)
        }
        ExprKind::Field { base, .. } => taint_of(base, env, cx),
        ExprKind::Index { base, index } => {
            let b = taint_of(base, env, cx);
            taint_of(index, env, cx);
            b
        }
        ExprKind::Unary { expr: e, .. } | ExprKind::Try(e) | ExprKind::Cast { expr: e, .. } => {
            taint_of(e, env, cx)
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let l = taint_of(lhs, env, cx);
            let r = taint_of(rhs, env, cx);
            // Comparisons and boolean connectives yield bools, not
            // lengths.
            if matches!(op.as_str(), "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||") {
                false
            } else {
                l || r
            }
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            let t = taint_of(rhs, env, cx);
            if let ExprKind::Path(segs) = &lhs.kind {
                if segs.len() == 1 {
                    if t {
                        env.tainted.insert(segs[0].clone());
                    }
                    // A clean plain `=` overwrite clears the taint;
                    // compound ops keep any existing taint.
                    // (Conservative: only `=` untaints.)
                }
            }
            false
        }
        ExprKind::Closure { body, .. } => {
            taint_of(body, env, cx);
            false
        }
        ExprKind::If { cond, then_block, else_branch } => {
            taint_of(cond, env, cx);
            let mut t = block_taint(then_block, env, cx);
            if let Some(e) = else_branch {
                t |= taint_of(e, env, cx);
            }
            t
        }
        ExprKind::Match { scrutinee, arms } => {
            let s_taint = taint_of(scrutinee, env, cx);
            let mut t = false;
            for arm in arms {
                if s_taint {
                    for name in bound_names(&arm.pat) {
                        env.tainted.insert(name);
                    }
                }
                if let Some(g) = &arm.guard {
                    taint_of(g, env, cx);
                }
                t |= taint_of(&arm.body, env, cx);
            }
            t
        }
        ExprKind::Loop { head, body } => {
            if let Some(h) = head {
                taint_of(h, env, cx);
            }
            block_taint(body, env, cx);
            false
        }
        ExprKind::Block(b) => block_taint(b, env, cx),
        ExprKind::Tuple(es) | ExprKind::Array(es) => {
            let mut t = false;
            for e in es {
                t |= taint_of(e, env, cx);
            }
            t
        }
        ExprKind::Repeat { elem, len } => {
            taint_of(elem, env, cx);
            if taint_of(len, env, cx) {
                cx.sink_hit(expr.line, "`[_; n]`", "unvalidated");
            }
            false
        }
        ExprKind::MacroCall { path, args, semi_form } => {
            let taints: Vec<bool> = args.iter().map(|a| taint_of(a, env, cx)).collect();
            if *semi_form && path == "vec" {
                if taints.get(1).copied().unwrap_or(false) {
                    cx.sink_hit(expr.line, "`vec![_; n]`", "unvalidated");
                }
                return false;
            }
            taints.into_iter().any(|t| t)
        }
        ExprKind::StructLit { fields, .. } => {
            let mut t = false;
            for (_, e) in fields {
                t |= taint_of(e, env, cx);
            }
            t
        }
        ExprKind::Return(arg) => {
            if let Some(e) = arg {
                let t = taint_of(e, env, cx);
                if t {
                    env.tainted.insert(RETURN_SLOT.to_string());
                }
            }
            false
        }
        ExprKind::Range { lo, hi } => {
            let mut t = false;
            if let Some(e) = lo {
                t |= taint_of(e, env, cx);
            }
            if let Some(e) = hi {
                t |= taint_of(e, env, cx);
            }
            t
        }
    }
}

/// Pseudo-variable recording that an explicit `return` carried taint.
const RETURN_SLOT: &str = "<return>";

/// Evaluates a block: statements in order, taint of the trailing
/// expression (no `;`) as the block's value.
fn block_taint(block: &Block, env: &mut Env, cx: &mut TaintCtx<'_>) -> bool {
    let mut value = false;
    for (i, stmt) in block.stmts.iter().enumerate() {
        let last = i + 1 == block.stmts.len();
        match stmt {
            Stmt::Let { pat, init, else_block, .. } => {
                let t = init.as_ref().map(|e| taint_of(e, env, cx)).unwrap_or(false);
                if let Some(b) = else_block {
                    block_taint(b, env, cx);
                }
                if t {
                    for name in bound_names(pat) {
                        env.tainted.insert(name);
                    }
                }
                value = false;
            }
            Stmt::Expr { expr, semi } => {
                let t = taint_of(expr, env, cx);
                value = if last && !semi { t } else { false };
            }
            Stmt::Item(_) => value = false,
        }
    }
    value
}

// ---- summaries ------------------------------------------------------------

/// Computes one fn's summary: taint of the return value given clean
/// params, and which params reach an allocation sink when tainted.
fn summarize(fr: &FnRef<'_>) -> FnSummary {
    let func = fr.func;
    let mut out = FnSummary {
        returns_result: func.ret.contains("Result"),
        has_self: func.params.first().is_some_and(|p| p.name == "self"),
        ..FnSummary::default()
    };
    let Some(body) = &func.body else { return out };

    // Pass 1: clean params — does a decode source reach the return?
    {
        let mut env = Env::default();
        let mut cx = TaintCtx { index: None, findings: Vec::new() };
        let tail = block_taint(body, &mut env, &mut cx);
        out.returns_tainted = tail || env.tainted.contains(RETURN_SLOT);
    }

    // Pass 2: one param tainted at a time — does it reach a sink?
    for (i, param) in func.params.iter().enumerate() {
        let mut env = Env::default();
        env.tainted.insert(param.name.clone());
        let mut cx = TaintCtx { index: None, findings: Vec::new() };
        block_taint(body, &mut env, &mut cx);
        if !cx.findings.is_empty() {
            out.params_to_alloc.push(i);
        }
    }
    out
}

// ---- rule entry points ----------------------------------------------------

/// `unbounded-wire-alloc` over every fn body in a parsed file.
pub fn check_wire_alloc(file: &File, index: &FlowIndex) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for fr in crate::parse::collect_fns(file) {
        let Some(body) = &fr.func.body else { continue };
        let mut env = Env::default();
        let mut cx = TaintCtx { index: Some(index), findings: Vec::new() };
        block_taint(body, &mut env, &mut cx);
        out.append(&mut cx.findings);
    }
    out
}

/// `unused-result` over statement-position calls in a parsed file.
pub fn check_unused_result(file: &File, index: &FlowIndex) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for fr in crate::parse::collect_fns(file) {
        let Some(body) = &fr.func.body else { continue };
        check_unused_in_block(body, index, &mut out);
    }
    out
}

fn check_unused_in_block(body: &Block, index: &FlowIndex, out: &mut Vec<RawFinding>) {
    // Every block exactly once; a `;`-terminated call among a block's
    // direct statements is statement position — the value is
    // discarded.
    crate::parse::walk_blocks(body, &mut |block| {
        for stmt in &block.stmts {
            if let Stmt::Expr { expr, semi: true } = stmt {
                match &expr.kind {
                    ExprKind::Call { callee, .. } => {
                        if let ExprKind::Path(segs) = &callee.kind {
                            let name = path_last(segs);
                            if index.free_fn_always_result(name) {
                                out.push(unused_result_finding(expr.line, name));
                            }
                        }
                    }
                    ExprKind::MethodCall { method, .. } => {
                        if index.method_always_result(method) {
                            out.push(unused_result_finding(expr.line, method));
                        }
                    }
                    _ => {}
                }
            }
        }
    });
}

fn unused_result_finding(line: u32, name: &str) -> RawFinding {
    RawFinding {
        rule: "unused-result",
        line,
        message: format!(
            "result of `{name}` (which returns Result) is discarded at statement position — \
             propagate with `?`, bind it, or match on it"
        ),
    }
}

// ---- money arithmetic -----------------------------------------------------

/// `no-unchecked-money-arith` over every fn body in a parsed file.
/// Only called for files under `crates/ledger/src/`.
pub fn check_money_arith(file: &File) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for fr in crate::parse::collect_fns(file) {
        let Some(body) = &fr.func.body else { continue };
        let money_impl = fr
            .self_ty
            .is_some_and(|t| t.split(['<', ' ']).next().is_some_and(is_money_type));
        let mut money_vars = BTreeSet::new();
        for p in &fr.func.params {
            if type_is_money(&p.ty) {
                money_vars.insert(p.name.clone());
            }
        }
        check_money_block(body, money_impl, &mut money_vars, &mut out);
    }
    out
}

fn is_money_type(name: &str) -> bool {
    name == "Wei" || name == "Fixed"
}

fn type_is_money(ty: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_').any(is_money_type)
}

fn check_money_block(
    block: &Block,
    money_impl: bool,
    vars: &mut BTreeSet<String>,
    out: &mut Vec<RawFinding>,
) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::Let { pat, ty, init, else_block, .. } => {
                if let Some(e) = init {
                    check_money_expr(e, money_impl, vars, out);
                }
                if let Some(b) = else_block {
                    check_money_block(b, money_impl, vars, out);
                }
                if type_is_money(ty)
                    || init.as_ref().is_some_and(|e| money_expr_name(e, money_impl, vars).is_some())
                {
                    for n in bound_names(pat) {
                        vars.insert(n);
                    }
                }
            }
            Stmt::Expr { expr, .. } => check_money_expr(expr, money_impl, vars, out),
            Stmt::Item(_) => {}
        }
    }
}

/// Whether an expression denotes a money value; returns a short
/// description for the finding message.
fn money_expr_name(expr: &Expr, money_impl: bool, vars: &BTreeSet<String>) -> Option<String> {
    match &expr.kind {
        ExprKind::Path(segs) => {
            let last = path_last(segs);
            if (segs.len() == 1 && vars.contains(last)) || money_name(last) {
                Some(format!("`{last}`"))
            } else {
                None
            }
        }
        ExprKind::Field { base, name } => {
            if money_name(name) {
                return Some(format!("`.{name}`"));
            }
            // `self.0` / `rhs.0` inside `impl Wei` / `impl Fixed`.
            if money_impl && name.chars().all(|c| c.is_ascii_digit()) {
                if let ExprKind::Path(segs) = &base.kind {
                    if segs.len() == 1 {
                        return Some(format!("`{}.{name}`", segs[0]));
                    }
                }
            }
            None
        }
        ExprKind::Call { callee, .. } => {
            if let ExprKind::Path(segs) = &callee.kind {
                if is_money_type(path_last(segs)) {
                    return Some(format!("`{}(…)`", path_last(segs)));
                }
            }
            None
        }
        ExprKind::Unary { expr: e, .. } | ExprKind::Try(e) => money_expr_name(e, money_impl, vars),
        _ => None,
    }
}

fn money_name(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    MONEY_NAMES.iter().any(|m| lower == *m || lower.ends_with(&format!("_{m}")))
}

fn check_money_expr(
    expr: &Expr,
    money_impl: bool,
    vars: &BTreeSet<String>,
    out: &mut Vec<RawFinding>,
) {
    crate::parse::walk_expr(expr, &mut |e| {
        let (op, lhs, rhs) = match &e.kind {
            ExprKind::Binary { op, lhs, rhs } if matches!(op.as_str(), "+" | "-" | "*") => {
                (op, lhs, rhs)
            }
            ExprKind::Assign { op, lhs, rhs }
                if matches!(op.as_str(), "+=" | "-=" | "*=") =>
            {
                (op, lhs, rhs)
            }
            _ => return,
        };
        let operand = money_expr_name(lhs, money_impl, vars)
            .or_else(|| money_expr_name(rhs, money_impl, vars));
        if let Some(what) = operand {
            out.push(RawFinding {
                rule: "no-unchecked-money-arith",
                line: e.line,
                message: format!(
                    "raw `{op}` on money-typed operand {what}: silent overflow corrupts \
                     settlement — use checked_*/saturating_* (or lint:allow with the \
                     overflow argument)"
                ),
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn wire_findings(src: &str) -> Vec<u32> {
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let index = FlowIndex::build([&file]);
        check_wire_alloc(&file, &index).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn tainted_length_reaching_with_capacity_fires() {
        let src = "fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = buf.try_get_u64_le()? as usize;\n\
                   let mut v = Vec::with_capacity(n);\n\
                   Ok(())\n}\n";
        assert_eq!(wire_findings(src), [3]);
    }

    #[test]
    fn min_capped_length_is_clean() {
        let src = "fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = buf.try_get_u64_le()? as usize;\n\
                   let mut v = Vec::with_capacity(n.min(1024));\n\
                   Ok(())\n}\n";
        assert!(wire_findings(src).is_empty());
    }

    #[test]
    fn bounded_count_sanitizes() {
        let src = "fn d(buf: &mut B) -> Result<(), E> {\n\
                   let raw = buf.try_get_u64_le()? as usize;\n\
                   let n = bounded_count(raw, buf.remaining(), 53)?;\n\
                   let mut v = Vec::with_capacity(n);\n\
                   Ok(())\n}\n";
        assert!(wire_findings(src).is_empty());
    }

    #[test]
    fn taint_flows_through_match_arms() {
        let src = "fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = match buf.try_get_u32_le() { Ok(v) => v as usize, Err(_) => 0 };\n\
                   buf2.reserve(n);\n\
                   Ok(())\n}\n";
        assert_eq!(wire_findings(src), [3]);
    }

    #[test]
    fn vec_macro_semi_form_is_a_sink() {
        let src = "fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = buf.try_get_u16_le()? as usize;\n\
                   let v = vec![0u8; n];\n\
                   Ok(())\n}\n";
        assert_eq!(wire_findings(src), [3]);
    }

    #[test]
    fn call_through_one_level_taints_return() {
        let src = "fn read_len(buf: &mut B) -> Result<usize, E> {\n\
                   Ok(buf.try_get_u64_le()? as usize)\n}\n\
                   fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = read_len(buf)?;\n\
                   let mut v = Vec::with_capacity(n);\n\
                   Ok(())\n}\n";
        assert_eq!(wire_findings(src), [6]);
    }

    #[test]
    fn call_through_one_level_param_to_alloc() {
        let src = "fn alloc_rows(n: usize) -> Vec<u8> {\n\
                   Vec::with_capacity(n)\n}\n\
                   fn d(buf: &mut B) -> Result<(), E> {\n\
                   let n = buf.try_get_u64_le()? as usize;\n\
                   let v = alloc_rows(n);\n\
                   Ok(())\n}\n";
        let lines = wire_findings(src);
        assert!(lines.contains(&6), "{lines:?}");
    }

    #[test]
    fn unrelated_lengths_are_clean() {
        let src = "fn d(items: &[u8]) {\n\
                   let mut v = Vec::with_capacity(items.len());\n\
                   v.reserve(items.len() * 2);\n}\n";
        assert!(wire_findings(src).is_empty());
    }

    fn money_findings(src: &str) -> Vec<u32> {
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        check_money_arith(&file).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn raw_add_on_balance_field_fires() {
        let src = "fn credit(a: &mut Account, amount: Wei) {\n\
                   a.balance = a.balance + amount;\n}\n";
        assert_eq!(money_findings(src), [2]);
    }

    #[test]
    fn compound_nonce_increment_fires() {
        let src = "fn bump(a: &mut Account) {\n  a.nonce += 1;\n}\n";
        assert_eq!(money_findings(src), [2]);
    }

    #[test]
    fn wrapped_zero_field_in_money_impl_fires() {
        let src = "impl Fixed {\n\
                   fn plus(self, rhs: Fixed) -> Fixed { Fixed(self.0 + rhs.0) }\n}\n";
        assert_eq!(money_findings(src), [2]);
    }

    #[test]
    fn checked_and_saturating_money_ops_are_clean() {
        let src = "fn credit(a: &mut Account, amount: Wei) -> Option<()> {\n\
                   a.balance = a.balance.checked_add(amount)?;\n\
                   a.nonce = a.nonce.saturating_add(1);\n\
                   Some(())\n}\n";
        assert!(money_findings(src).is_empty());
    }

    #[test]
    fn non_money_arith_is_clean() {
        let src = "fn f(i: usize, len: usize) -> usize { i * 8 + len - 1 }\n";
        assert!(money_findings(src).is_empty());
    }

    fn unused_findings(src: &str) -> Vec<u32> {
        let file = parse_source(src);
        assert!(file.errors.is_empty(), "{:?}", file.errors);
        let index = FlowIndex::build([&file]);
        check_unused_result(&file, &index).into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn discarded_result_call_fires() {
        let src = "fn settle() -> Result<(), E> { Ok(()) }\n\
                   fn f() {\n  settle();\n}\n";
        assert_eq!(unused_findings(src), [3]);
    }

    #[test]
    fn question_mark_and_binding_are_clean() {
        let src = "fn settle() -> Result<(), E> { Ok(()) }\n\
                   fn f() -> Result<(), E> {\n\
                   settle()?;\n\
                   let _r = settle();\n\
                   match settle() { Ok(()) => {}, Err(_) => {} }\n\
                   Ok(())\n}\n";
        assert!(unused_findings(src).is_empty());
    }

    #[test]
    fn std_collision_method_names_are_excluded() {
        let src = "impl Q { fn push(&mut self, x: u8) -> Result<(), E> { Ok(()) } }\n\
                   fn f(v: &mut Vec<u8>) {\n  v.push(1);\n}\n";
        assert!(unused_findings(src).is_empty());
    }

    #[test]
    fn ambiguous_free_fn_names_are_excluded() {
        let src = "fn go() -> Result<(), E> { Ok(()) }\n\
                   mod b { fn go() -> u32 { 1 } }\n\
                   fn f() {\n  go();\n}\n";
        assert!(unused_findings(src).is_empty());
    }
}
