//! The rule engine: file discovery, `#[cfg(test)]` scoping, the
//! `lint:allow` escape hatch, and finding assembly.
//!
//! # Allow syntax
//!
//! ```text
//! // lint:allow(rule-id): reason the rule does not apply here
//! ```
//!
//! An allow binds to what it annotates:
//!
//! * **trailing** (code precedes it on the same line) — that line;
//! * **standalone above a parsed item** (`fn`/`impl`/`mod`/… starts on
//!   the next line) — the whole item span, so one annotation covers a
//!   fn whose rule fires anywhere in its body;
//! * **standalone above a statement** — the next line, as before;
//! * **floating** (next line blank, comment-only, or EOF) — nothing:
//!   that is an `allow-span-precision` finding; move the annotation
//!   onto the code it suppresses.
//!
//! Three invariants are enforced by the engine itself:
//!
//! * every allow must name a known rule **and** carry a non-empty
//!   reason after a colon (`bad-allow` otherwise);
//! * every allow must bind to code (`allow-span-precision` otherwise);
//! * every allow must actually suppress something (`unused-allow`
//!   otherwise) — fixed code must shed its annotations. Suppression
//!   attribution is **best-match**: a finding marks only the single
//!   tightest enclosing allow as used (smallest span, then nearest),
//!   so two allows of the same rule in one file are distinguished and
//!   the stale one is reported line-accurately.
//!
//! None of the meta findings is suppressible.
//!
//! # `#[cfg(test)]` scoping
//!
//! Rules with `in_tests: false` skip findings inside `#[cfg(test)]`
//! items. Detection is token-based: the attribute sequence
//! `# [ cfg ( test ) ]` marks the start of a span that ends at the
//! matching close brace of the item's body (or at a top-level `;` for
//! brace-less items). Only the literal `test` predicate is recognized
//! — `#[cfg(any(test, …))]` shapes are not used in this workspace.

use crate::callgraph::PoolIndex;
use crate::flow::FlowIndex;
use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::manifest;
use crate::parse;
use crate::rules;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One confirmed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's id.
    pub rule: String,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
pub fn test_spans(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].kind == TokKind::Punct
            && tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].kind == TokKind::Ident
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].kind == TokKind::Ident
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Walk past the attribute to the item body: the span ends at
        // the matching `}` of the first top-level `{`, or at a
        // top-level `;` (e.g. `#[cfg(test)] mod tests;`).
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// One parsed `lint:allow` marker.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// Lines this allow suppresses (comment lines plus what it binds
    /// to: the trailing line, the next statement line, or the whole
    /// annotated item).
    lo: u32,
    hi: u32,
    /// Line reported for bad/unused findings about the allow itself.
    at: u32,
    valid_reason: bool,
    /// The allow binds to no code at all (floating).
    floating: bool,
    used: bool,
}

/// Whether a comment is a doc comment (`///`, `//!`, `/**`, `/*!`).
/// Doc comments never carry allows — they document items, while an
/// allow annotates a code line — so marker text quoted in prose or
/// rendered examples can never suppress anything.
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

/// Extracts every `lint:allow(rule): reason` marker from a comment,
/// unbound: `lo`/`hi`/`floating` are filled in by [`bind_allows`] once
/// the token lines and item spans of the file are known.
fn parse_allows(comment: &Comment) -> Vec<Allow> {
    const MARKER: &str = "lint:allow(";
    let mut out = Vec::new();
    if is_doc_comment(&comment.text) {
        return out;
    }
    let text = &comment.text;
    let mut from = 0usize;
    while let Some(off) = text[from..].find(MARKER) {
        let open = from + off + MARKER.len();
        let Some(close_rel) = text[open..].find(')') else {
            break;
        };
        let close = open + close_rel;
        let rule = text[open..close].trim().to_string();
        let rest = &text[close + 1..];
        // Reason: a ':' then non-empty text (up to the next marker if
        // several allows share one comment).
        let reason_end = rest.find(MARKER).unwrap_or(rest.len());
        let reason_part = rest[..reason_end].trim_start();
        let valid_reason = reason_part
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule,
            lo: comment.line,
            hi: comment.end_line,
            at: comment.line,
            valid_reason,
            floating: false,
            used: false,
        });
        from = close + 1;
    }
    out
}

/// Collects `(line, end_line)` spans for every item the parser
/// structured, recursing through modules, impls, and traits so an
/// allow above an inherent method binds that method's whole body.
fn item_spans(items: &[parse::Item], out: &mut Vec<(u32, u32)>) {
    for item in items {
        out.push((item.line, item.end_line));
        match &item.kind {
            parse::ItemKind::Mod(children)
            | parse::ItemKind::Trait(children)
            | parse::ItemKind::Impl { items: children, .. } => item_spans(children, out),
            _ => {}
        }
    }
}

/// Binds each allow to the code it annotates (see the module docs):
/// trailing allows cover their own line, standalone allows cover the
/// next code line — widened to the whole item span when that line
/// starts a parsed item — and allows over blank/comment/EOF lines are
/// marked floating (an `allow-span-precision` finding, suppressing
/// nothing).
fn bind_allows(lexed: &Lexed, parsed: &parse::File) -> Vec<Allow> {
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut spans = Vec::new();
    item_spans(&parsed.items, &mut spans);

    let mut allows: Vec<Allow> = lexed.comments.iter().flat_map(parse_allows).collect();
    for a in &mut allows {
        if token_lines.contains(&a.lo) {
            // Trailing: code shares the comment's first line.
            a.hi = a.lo;
            continue;
        }
        let target = a.hi + 1; // first line after the comment
        if !token_lines.contains(&target) {
            a.floating = true;
            a.hi = a.lo;
            continue;
        }
        // Smallest parsed item starting exactly on the target line
        // wins; otherwise the allow covers just that line.
        let item_end = spans
            .iter()
            .filter(|&&(lo, _)| lo == target)
            .map(|&(_, hi)| hi)
            .min();
        a.hi = item_end.unwrap_or(target).max(target);
    }
    allows
}

/// Marks the single best-matching allow for `(rule, line)` used and
/// reports whether the finding is suppressed. Best match = smallest
/// span, then nearest marker line — so two allows of the same rule in
/// one file are distinguished and a stale one stays unused.
fn suppress(allows: &mut [Allow], rule: &str, line: u32) -> bool {
    let mut best: Option<usize> = None;
    for (i, a) in allows.iter().enumerate() {
        if a.rule != rule || !a.valid_reason || a.floating || line < a.lo || line > a.hi {
            continue;
        }
        let key = (a.hi - a.lo, a.at.abs_diff(line));
        let better = match best {
            None => true,
            Some(j) => {
                let b = &allows[j];
                key < (b.hi - b.lo, b.at.abs_diff(line))
            }
        };
        if better {
            best = Some(i);
        }
    }
    match best {
        Some(i) => {
            allows[i].used = true;
            true
        }
        None => false,
    }
}

/// The per-file core: token rules plus the semantic passes (taint
/// dataflow for wire allocs, result discipline, money arithmetic, and
/// the pool-nesting call-graph check), then test-span filtering, allow
/// suppression, and the three meta rules about allows themselves.
fn lint_parsed(
    rel_path: &str,
    lexed: &Lexed,
    parsed: &parse::File,
    flow: &FlowIndex,
    pool: &PoolIndex,
) -> Vec<Finding> {
    let target = rules::classify(rel_path);
    let spans = test_spans(&lexed.tokens);

    let mut raw = rules::run_token_rules(rel_path, target, &lexed.tokens);
    if rules::applies("unbounded-wire-alloc", rel_path, target) {
        raw.extend(crate::flow::check_wire_alloc(parsed, flow));
    }
    if rules::applies("unused-result", rel_path, target) {
        raw.extend(crate::flow::check_unused_result(parsed, flow));
    }
    if rules::applies("no-unchecked-money-arith", rel_path, target) {
        raw.extend(crate::flow::check_money_arith(parsed));
    }
    if rules::applies("no-nested-pool-scope", rel_path, target) {
        raw.extend(pool.check_file(rel_path));
    }
    raw.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));

    let mut allows = bind_allows(lexed, parsed);
    let mut out = Vec::new();

    for f in raw {
        // Rule passes only emit ids from the RULES table.
        let Some(info) = rules::rule(f.rule) else { continue };
        if !info.in_tests && in_spans(&spans, f.line) {
            continue;
        }
        if !suppress(&mut allows, f.rule, f.line) {
            out.push(Finding {
                rule: f.rule.to_string(),
                file: rel_path.to_string(),
                line: f.line,
                message: f.message,
            });
        }
    }

    // Meta rules about the allows themselves. None is suppressible: an
    // allow must name a known rule with a reason, bind to code, and
    // suppress something.
    for a in &allows {
        if rules::rule(&a.rule).is_none() {
            out.push(Finding {
                rule: "bad-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!("lint:allow names unknown rule `{}`", a.rule),
            });
        } else if !a.valid_reason {
            out.push(Finding {
                rule: "bad-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!(
                    "lint:allow({}) has no reason — write `lint:allow({}): why`",
                    a.rule, a.rule
                ),
            });
        } else if a.floating {
            out.push(Finding {
                rule: "allow-span-precision".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!(
                    "lint:allow({}) binds to no code (next line is blank, a comment, or EOF) — \
                     move it onto or directly above the line it suppresses",
                    a.rule
                ),
            });
        } else if !a.used {
            out.push(Finding {
                rule: "unused-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!(
                    "lint:allow({}) suppresses nothing on lines {}–{} — remove it",
                    a.rule, a.lo, a.hi
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    out
}

/// Lints one file's source text in isolation: the flow and pool
/// indexes are built from this file alone, so call-through resolution
/// sees only its own fns. `rel_path` drives rule scoping, so tests can
/// pass synthetic paths. The full workspace lint
/// ([`lint_workspace`]) shares cross-file indexes instead.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let parsed = parse::parse(&lexed);
    let flow = FlowIndex::build([&parsed]);
    let pool = PoolIndex::build([(rel_path, &parsed)]);
    lint_parsed(rel_path, &lexed, &parsed, &flow, &pool)
}

/// Lints one `Cargo.toml` (the `no-registry-deps` rule).
pub fn lint_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    manifest::scan(text)
        .into_iter()
        .map(|v| Finding {
            rule: "no-registry-deps".to_string(),
            file: rel_path.to_string(),
            line: v.line,
            message: format!(
                "{} is not a path dependency — the zero-dependency policy (DESIGN.md \u{a7}6) \
                 forbids registry crates",
                v.detail
            ),
        })
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort(); // deterministic traversal → deterministic reports
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | ".claude") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every `.rs` file and
/// every `Cargo.toml`, excluding `target/`. Runs in two phases — parse
/// everything, build the cross-file flow and pool indexes, then lint
/// each file against the shared indexes so one level of call-through
/// resolves across crate boundaries. Findings are sorted by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;

    // Phase 1: read + lex + parse every Rust file once.
    let mut manifests: Vec<(String, String)> = Vec::new();
    let mut sources: Vec<(String, Lexed, parse::File)> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&path)?;
        if rel.ends_with("Cargo.toml") {
            manifests.push((rel, text));
        } else {
            let lexed = lex(&text);
            let parsed = parse::parse(&lexed);
            sources.push((rel, lexed, parsed));
        }
    }

    // Phase 2: cross-file indexes, then per-file linting.
    let flow = FlowIndex::build(sources.iter().map(|(_, _, p)| p));
    let pool = PoolIndex::build(sources.iter().map(|(rel, _, p)| (rel.as_str(), p)));

    let mut findings = Vec::new();
    for (rel, text) in &manifests {
        findings.extend(lint_manifest(rel, text));
    }
    for (rel, lexed, parsed) in &sources {
        findings.extend(lint_parsed(rel, lexed, parsed, &flow, &pool));
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
    });
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/x.rs";

    #[test]
    fn cfg_test_spans_cover_the_module_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn after() { y.unwrap(); }\n";
        let lexed = lex(src);
        assert_eq!(test_spans(&lexed.tokens), vec![(1, 2)]);
        // The unwrap after the span is still flagged.
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn findings_inside_cfg_test_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses_and_is_used() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib): invariant: x is Some\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "// lint:allow(no-panic-in-lib): invariant: x is Some\nfn f() { x.unwrap(); }\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib)\n";
        let f = lint_source(LIB, src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"no-panic-in-lib"), "unsuppressed: {rules:?}");
        assert!(rules.contains(&"bad-allow"));
    }

    #[test]
    fn allow_naming_unknown_rule_is_bad() {
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-allow");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// lint:allow(no-panic-in-lib): nothing here panics\nfn f() {}\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-allow");
    }

    #[test]
    fn allow_scope_does_not_leak_to_the_next_item() {
        let src = "// lint:allow(no-panic-in-lib): only fn f\nfn f() {}\n\
                   fn g() { x.unwrap(); }\n";
        let f = lint_source(LIB, src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"no-panic-in-lib"));
        assert!(rules.contains(&"unused-allow"));
    }

    #[test]
    fn standalone_allow_above_a_fn_covers_its_whole_body() {
        // The violation sits three lines into the fn body; the allow
        // above the fn binds the parsed item span, not just one line.
        let src = "// lint:allow(no-panic-in-lib): demo covers the item\n\
                   fn f(x: Option<u32>) -> u32 {\n\
                   \u{20}   let y = 1;\n\
                   \u{20}   let z = y + 1;\n\
                   \u{20}   x.unwrap() + z\n\
                   }\n";
        assert!(lint_source(LIB, src).is_empty(), "{:?}", lint_source(LIB, src));
    }

    #[test]
    fn floating_allow_is_a_span_precision_finding() {
        let src = "fn f() {}\n// lint:allow(no-panic-in-lib): nothing follows\n\n\
                   fn g() { x.unwrap(); }\n";
        let f = lint_source(LIB, src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"allow-span-precision"), "{f:?}");
        assert!(rules.contains(&"no-panic-in-lib"), "{f:?}");
        assert!(!rules.contains(&"unused-allow"), "{f:?}");
    }

    #[test]
    fn allow_at_eof_is_floating() {
        let src = "fn f() {}\n// lint:allow(no-panic-in-lib): trailing comment at eof\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "allow-span-precision");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn double_allow_reports_only_the_stale_one_line_accurately() {
        // Two allows of the same rule in one file: the first suppresses
        // a real violation, the second covers clean code. Best-match
        // attribution must mark only the first used and report the
        // second at its own line.
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib): invariant: x is Some\n\
                   fn g() { y + 1; } // lint:allow(no-panic-in-lib): stale, g no longer panics\n";
        let f = lint_source(LIB, src);
        let unused: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "unused-allow")
            .map(|f| f.line)
            .collect();
        assert_eq!(unused, vec![2], "{f:?}");
        assert!(!f.iter().any(|f| f.rule == "no-panic-in-lib"), "{f:?}");
    }

    #[test]
    fn nested_allow_beats_the_item_allow_for_attribution() {
        // An item-span allow and a trailing allow both cover the same
        // violation; the trailing one (smaller span) is attributed, so
        // the outer one is reported stale rather than silently kept.
        let src = "// lint:allow(no-panic-in-lib): outer, now stale\n\
                   fn f(x: Option<u32>) -> u32 {\n\
                   \u{20}   x.unwrap() // lint:allow(no-panic-in-lib): invariant: x is Some\n\
                   }\n";
        let f = lint_source(LIB, src);
        let unused: Vec<u32> = f
            .iter()
            .filter(|f| f.rule == "unused-allow")
            .map(|f| f.line)
            .collect();
        assert_eq!(unused, vec![1], "{f:?}");
    }

    #[test]
    fn doc_comments_never_carry_allows() {
        // Marker text quoted in documentation must neither suppress
        // nor be reported as bad/unused.
        let src = "/// The escape hatch is `// lint:allow(no-such-rule): reason`.\n\
                   //! Module docs may show lint:allow(also-not-a-rule) too.\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn manifest_rule_produces_findings_with_lines() {
        let f = lint_manifest("Cargo.toml", "[dependencies]\nrand = \"0.8\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-registry-deps");
        assert_eq!(f[0].line, 2);
    }
}
