//! The rule engine: file discovery, `#[cfg(test)]` scoping, the
//! `lint:allow` escape hatch, and finding assembly.
//!
//! # Allow syntax
//!
//! ```text
//! // lint:allow(rule-id): reason the rule does not apply here
//! ```
//!
//! An allow suppresses findings of `rule-id` on the comment's own
//! line(s) and the line immediately after — so it works both as a
//! trailing comment on the offending line and as a comment on the line
//! above. Two invariants are enforced by the engine itself:
//!
//! * every allow must name a known rule **and** carry a non-empty
//!   reason after a colon (`bad-allow` otherwise);
//! * every allow must actually suppress something (`unused-allow`
//!   otherwise) — fixed code must shed its annotations.
//!
//! Neither meta finding is suppressible.
//!
//! # `#[cfg(test)]` scoping
//!
//! Rules with `in_tests: false` skip findings inside `#[cfg(test)]`
//! items. Detection is token-based: the attribute sequence
//! `# [ cfg ( test ) ]` marks the start of a span that ends at the
//! matching close brace of the item's body (or at a top-level `;` for
//! brace-less items). Only the literal `test` predicate is recognized
//! — `#[cfg(any(test, …))]` shapes are not used in this workspace.

use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::manifest;
use crate::rules;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One confirmed lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule's id.
    pub rule: String,
    /// Workspace-relative file path (`/`-separated).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable message.
    pub message: String,
}

/// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
pub fn test_spans(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].kind == TokKind::Punct
            && tokens[i].text == "#"
            && tokens[i + 1].text == "["
            && tokens[i + 2].kind == TokKind::Ident
            && tokens[i + 2].text == "cfg"
            && tokens[i + 3].text == "("
            && tokens[i + 4].kind == TokKind::Ident
            && tokens[i + 4].text == "test"
            && tokens[i + 5].text == ")"
            && tokens[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Walk past the attribute to the item body: the span ends at
        // the matching `}` of the first top-level `{`, or at a
        // top-level `;` (e.g. `#[cfg(test)] mod tests;`).
        let mut j = i + 7;
        let mut depth = 0i32;
        let mut end_line = start_line;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t.line;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        end_line = t.line;
                        break;
                    }
                    _ => {}
                }
            }
            end_line = t.line;
            j += 1;
        }
        spans.push((start_line, end_line));
        i = j + 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans.iter().any(|&(lo, hi)| lo <= line && line <= hi)
}

/// One parsed `lint:allow` marker.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// Lines this allow suppresses (comment lines plus the next line).
    lo: u32,
    hi: u32,
    /// Line reported for bad/unused findings about the allow itself.
    at: u32,
    valid_reason: bool,
    used: bool,
}

/// Whether a comment is a doc comment (`///`, `//!`, `/**`, `/*!`).
/// Doc comments never carry allows — they document items, while an
/// allow annotates a code line — so marker text quoted in prose or
/// rendered examples can never suppress anything.
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

/// Extracts every `lint:allow(rule): reason` marker from a comment.
fn parse_allows(comment: &Comment) -> Vec<Allow> {
    const MARKER: &str = "lint:allow(";
    let mut out = Vec::new();
    if is_doc_comment(&comment.text) {
        return out;
    }
    let text = &comment.text;
    let mut from = 0usize;
    while let Some(off) = text[from..].find(MARKER) {
        let open = from + off + MARKER.len();
        let Some(close_rel) = text[open..].find(')') else {
            break;
        };
        let close = open + close_rel;
        let rule = text[open..close].trim().to_string();
        let rest = &text[close + 1..];
        // Reason: a ':' then non-empty text (up to the next marker if
        // several allows share one comment).
        let reason_end = rest.find(MARKER).unwrap_or(rest.len());
        let reason_part = rest[..reason_end].trim_start();
        let valid_reason = reason_part
            .strip_prefix(':')
            .is_some_and(|r| !r.trim().is_empty());
        out.push(Allow {
            rule,
            lo: comment.line,
            hi: comment.end_line + 1,
            at: comment.line,
            valid_reason,
            used: false,
        });
        from = close + 1;
    }
    out
}

/// Lints one file's source text: token rules, test-span filtering, and
/// the allow machinery. `rel_path` drives rule scoping, so tests can
/// pass synthetic paths.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let target = rules::classify(rel_path);
    let spans = test_spans(&lexed.tokens);
    let raw = rules::run_token_rules(rel_path, target, &lexed.tokens);

    let mut allows: Vec<Allow> = lexed.comments.iter().flat_map(parse_allows).collect();
    let mut out = Vec::new();

    for f in raw {
        // Token rules only emit ids from the RULES table.
        let Some(info) = rules::rule(f.rule) else { continue };
        if !info.in_tests && in_spans(&spans, f.line) {
            continue;
        }
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rule == f.rule && a.valid_reason && a.lo <= f.line && f.line <= a.hi {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(Finding {
                rule: f.rule.to_string(),
                file: rel_path.to_string(),
                line: f.line,
                message: f.message,
            });
        }
    }

    for a in &allows {
        if rules::rule(&a.rule).is_none() {
            out.push(Finding {
                rule: "bad-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!("lint:allow names unknown rule `{}`", a.rule),
            });
        } else if !a.valid_reason {
            out.push(Finding {
                rule: "bad-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!(
                    "lint:allow({}) has no reason — write `lint:allow({}): why`",
                    a.rule, a.rule
                ),
            });
        } else if !a.used {
            out.push(Finding {
                rule: "unused-allow".to_string(),
                file: rel_path.to_string(),
                line: a.at,
                message: format!(
                    "lint:allow({}) suppresses nothing on lines {}–{} — remove it",
                    a.rule, a.lo, a.hi
                ),
            });
        }
    }
    out
}

/// Lints one `Cargo.toml` (the `no-registry-deps` rule).
pub fn lint_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    manifest::scan(text)
        .into_iter()
        .map(|v| Finding {
            rule: "no-registry-deps".to_string(),
            file: rel_path.to_string(),
            line: v.line,
            message: format!(
                "{} is not a path dependency — the zero-dependency policy (DESIGN.md \u{a7}6) \
                 forbids registry crates",
                v.detail
            ),
        })
        .collect()
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort(); // deterministic traversal → deterministic reports
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | ".claude") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`: every `.rs` file and
/// every `Cargo.toml`, excluding `target/`. Findings are sorted by
/// (file, line, rule).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&path)?;
        if rel.ends_with("Cargo.toml") {
            findings.extend(lint_manifest(&rel, &text));
        } else {
            findings.extend(lint_source(&rel, &text));
        }
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule))
    });
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/core/src/x.rs";

    #[test]
    fn cfg_test_spans_cover_the_module_body() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let lexed = lex(src);
        let spans = test_spans(&lexed.tokens);
        assert_eq!(spans, vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nmod tests;\nfn after() { y.unwrap(); }\n";
        let lexed = lex(src);
        assert_eq!(test_spans(&lexed.tokens), vec![(1, 2)]);
        // The unwrap after the span is still flagged.
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn findings_inside_cfg_test_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n  fn b() { x.unwrap(); }\n}\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_on_same_line_suppresses_and_is_used() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib): invariant: x is Some\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_on_previous_line_suppresses() {
        let src = "// lint:allow(no-panic-in-lib): invariant: x is Some\nfn f() { x.unwrap(); }\n";
        assert!(lint_source(LIB, src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad_and_does_not_suppress() {
        let src = "fn f() { x.unwrap(); } // lint:allow(no-panic-in-lib)\n";
        let f = lint_source(LIB, src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"no-panic-in-lib"), "unsuppressed: {rules:?}");
        assert!(rules.contains(&"bad-allow"));
    }

    #[test]
    fn allow_naming_unknown_rule_is_bad() {
        let src = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bad-allow");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "// lint:allow(no-panic-in-lib): nothing here panics\nfn f() {}\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "unused-allow");
    }

    #[test]
    fn allow_scope_does_not_leak_two_lines_down() {
        let src = "// lint:allow(no-panic-in-lib): only the next line\nfn f() {}\n\
                   fn g() { x.unwrap(); }\n";
        let f = lint_source(LIB, src);
        let rules: Vec<&str> = f.iter().map(|f| f.rule.as_str()).collect();
        assert!(rules.contains(&"no-panic-in-lib"));
        assert!(rules.contains(&"unused-allow"));
    }

    #[test]
    fn doc_comments_never_carry_allows() {
        // Marker text quoted in documentation must neither suppress
        // nor be reported as bad/unused.
        let src = "/// The escape hatch is `// lint:allow(no-such-rule): reason`.\n\
                   //! Module docs may show lint:allow(also-not-a-rule) too.\n\
                   fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_source(LIB, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-panic-in-lib");
    }

    #[test]
    fn manifest_rule_produces_findings_with_lines() {
        let f = lint_manifest("Cargo.toml", "[dependencies]\nrand = \"0.8\"\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-registry-deps");
        assert_eq!(f[0].line, 2);
    }
}
