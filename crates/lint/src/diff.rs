//! Changed-line extraction for `--diff <base>`: parses `git diff -U0`
//! unified output into a per-file set of added/modified line numbers
//! (new-side), so the CLI can restrict findings to lines the branch
//! actually touched.
//!
//! Only the new side matters: a finding points at a line in the
//! current tree, so deletions (which have no new-side line) cannot
//! host one. Hunk headers carry everything we need — with `-U0` the
//! `+start,len` range is exactly the changed lines — so the body of
//! each hunk is ignored, which also makes the parser robust to diff
//! noise like `\ No newline at end of file`.

use std::collections::{BTreeMap, BTreeSet};

/// Per-file changed lines (new side), keyed by `/`-separated
/// workspace-relative path as git prints it (`b/` prefix stripped).
pub type ChangedLines = BTreeMap<String, BTreeSet<u32>>;

/// Parses unified diff text (any `-U` context width; `-U0` is what the
/// CLI requests). Renames and mode changes are handled by keying off
/// the `+++ b/…` header alone; binary files (`+++ /dev/null` or no
/// hunks) contribute nothing.
pub fn changed_lines(diff: &str) -> ChangedLines {
    let mut out = ChangedLines::new();
    let mut current: Option<String> = None;
    for line in diff.lines() {
        if let Some(path) = line.strip_prefix("+++ ") {
            let path = path.trim_end();
            current = if path == "/dev/null" {
                None // deletion: no new-side lines
            } else {
                Some(path.strip_prefix("b/").unwrap_or(path).to_string())
            };
        } else if let Some(rest) = line.strip_prefix("@@") {
            let Some(file) = &current else { continue };
            // Hunk header: `@@ -a[,b] +c[,d] @@ …` — take the `+` range.
            let Some((start, len)) = parse_plus_range(rest) else { continue };
            let lines = out.entry(file.clone()).or_default();
            for l in start..start.saturating_add(len) {
                lines.insert(l);
            }
        }
    }
    out
}

/// Extracts `(start, len)` from the `+c[,d]` field of a hunk header
/// remainder (everything after the leading `@@`). `len` defaults to 1
/// when the `,d` part is omitted; a `+c,0` range (pure deletion hunk)
/// yields no lines.
fn parse_plus_range(rest: &str) -> Option<(u32, u32)> {
    let plus = rest.split_whitespace().find(|w| w.starts_with('+'))?;
    let body = &plus[1..];
    let (start_s, len_s) = match body.split_once(',') {
        Some((s, l)) => (s, l),
        None => (body, "1"),
    };
    let start: u32 = start_s.parse().ok()?;
    let len: u32 = len_s.parse().ok()?;
    Some((start, len))
}

/// Whether a finding at `(file, line)` lands on a changed line.
pub fn touches(changed: &ChangedLines, file: &str, line: u32) -> bool {
    changed.get(file).is_some_and(|lines| lines.contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIFF: &str = "\
diff --git a/crates/core/src/x.rs b/crates/core/src/x.rs
index 1111111..2222222 100644
--- a/crates/core/src/x.rs
+++ b/crates/core/src/x.rs
@@ -10,0 +11,2 @@ fn f() {
+    let a = 1;
+    let b = 2;
@@ -40 +42 @@ fn g() {
-    old
+    new
diff --git a/crates/core/src/gone.rs b/crates/core/src/gone.rs
deleted file mode 100644
--- a/crates/core/src/gone.rs
+++ /dev/null
@@ -1,5 +0,0 @@
-gone
";

    #[test]
    fn plus_ranges_become_line_sets_per_file() {
        let changed = changed_lines(DIFF);
        let x = changed.get("crates/core/src/x.rs").unwrap();
        assert_eq!(x.iter().copied().collect::<Vec<_>>(), vec![11, 12, 42]);
        // Deleted files contribute nothing on the new side.
        assert!(!changed.contains_key("crates/core/src/gone.rs"));
        assert!(!changed.contains_key("/dev/null"));
    }

    #[test]
    fn touches_matches_only_changed_lines() {
        let changed = changed_lines(DIFF);
        assert!(touches(&changed, "crates/core/src/x.rs", 11));
        assert!(!touches(&changed, "crates/core/src/x.rs", 13));
        assert!(!touches(&changed, "crates/core/src/other.rs", 11));
    }

    #[test]
    fn omitted_length_defaults_to_one_and_zero_length_yields_nothing() {
        assert_eq!(parse_plus_range(" -1 +7 @@"), Some((7, 1)));
        assert_eq!(parse_plus_range(" -3,2 +5,0 @@"), Some((5, 0)));
        let diff = "+++ b/a.rs\n@@ -3,2 +5,0 @@\n";
        assert!(changed_lines(diff).get("a.rs").map_or(true, |s| s.is_empty()));
    }
}
