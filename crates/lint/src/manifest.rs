//! `Cargo.toml` dependency scanning for the `no-registry-deps` rule.
//!
//! The workspace's zero-dependency policy (DESIGN.md §6) requires every
//! `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]` and
//! `[workspace.dependencies]` entry to be a **path** dependency — the
//! build environment has no crates.io access, so a single registry
//! entry breaks every build at step zero.
//!
//! This is deliberately the same minimal TOML section scan as
//! `tests/no_external_deps.rs` (a TOML parser would itself be a
//! registry crate); that test asserts the two scanners agree so they
//! cannot drift apart.

/// One `key = value` entry found inside a dependency-declaring TOML
/// section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEntry {
    /// The section the entry appeared in (e.g. `dependencies`).
    pub section: String,
    /// The entry key (dependency name, or a subtable key).
    pub key: String,
    /// The raw value text, or `"<subtable>"` for `[deps.name]` headers.
    pub value: String,
    /// 1-based line of the entry.
    pub line: u32,
}

/// Extracts every dependency entry from manifest text, handling both
/// inline `[deps]` tables and `[deps.name]` subtables.
pub fn dependency_entries(text: &str) -> Vec<DepEntry> {
    let mut out = Vec::new();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].trim().to_string();
            // A `[dependencies.foo]` subtable header is itself an
            // entry; its keys are validated by the subtable pass.
            let is_dep_subtable = section.starts_with("dependencies.")
                || section.starts_with("dev-dependencies.")
                || section.starts_with("build-dependencies.")
                || section.starts_with("workspace.dependencies.");
            if is_dep_subtable {
                let name = section.rsplit('.').next().unwrap_or("").to_string();
                out.push(DepEntry {
                    section: section.clone(),
                    key: name,
                    value: "<subtable>".to_string(),
                    line: line_no,
                });
            }
            continue;
        }
        let in_dep_table = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
        );
        let in_dep_subtable = section.starts_with("dependencies.")
            || section.starts_with("dev-dependencies.")
            || section.starts_with("build-dependencies.")
            || section.starts_with("workspace.dependencies.");
        if !in_dep_table && !in_dep_subtable {
            continue;
        }
        if let Some((key, value)) = line.split_once('=') {
            out.push(DepEntry {
                section: section.clone(),
                key: key.trim().to_string(),
                value: value.trim().to_string(),
                line: line_no,
            });
        }
    }
    out
}

/// Whether one dependency declaration value is path-only. Accepted
/// shapes: `name.workspace = true` (key carries the `.workspace`
/// suffix) and `name = { path = "…", … }` inline tables.
pub fn is_path_dependency(value: &str) -> bool {
    if value == "true" {
        return true;
    }
    value.contains("path") && value.contains('{')
}

/// One registry-dependency violation in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestViolation {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// Human-readable description of the entry.
    pub detail: String,
}

/// Scans manifest text and returns every non-path dependency entry.
pub fn scan(text: &str) -> Vec<ManifestViolation> {
    let entries = dependency_entries(text);
    let mut out = Vec::new();
    for e in &entries {
        let ok = if e.key.ends_with(".workspace") {
            // `name.workspace = true`; the root declaration is checked
            // when the root manifest itself is scanned.
            e.value == "true"
        } else if e.value == "<subtable>" {
            // `[dependencies.name]` — require a `path` key within.
            entries.iter().any(|o| o.section == e.section && o.key == "path")
        } else if e.section.ends_with(&format!(".{}", e.key)) || e.key == "path" || e.key == "version"
        {
            // Keys inside a subtable; `path` legitimizes the subtable,
            // other keys are inert details.
            true
        } else {
            is_path_dependency(&e.value)
        };
        if !ok {
            out.push(ManifestViolation {
                line: e.line,
                detail: format!("[{}] {} = {}", e.section, e.key, e.value),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_version_string_is_flagged() {
        let v = scan("[dependencies]\nrand = \"0.8\"\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("rand"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn inline_table_without_path_is_flagged() {
        let v = scan("[dependencies]\nserde = { version = \"1\", features = [\"derive\"] }\n");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn path_and_workspace_deps_are_clean() {
        let text = "[dependencies]\n\
                    tradefl-core = { path = \"crates/core\" }\n\
                    tradefl-solver.workspace = true\n";
        assert!(scan(text).is_empty());
    }

    #[test]
    fn subtable_requires_a_path_key() {
        let bad = "[dependencies.rand]\nversion = \"0.8\"\n";
        assert_eq!(scan(bad).len(), 1);
        let good = "[dependencies.core]\npath = \"crates/core\"\n";
        assert!(scan(good).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let text = "[package]\nname = \"x\"\nversion = \"1.0\"\n[features]\ndefault = []\n";
        assert!(scan(text).is_empty());
    }
}
