//! Workspace-wide parser guarantees: every `.rs` file in the tree
//! parses with zero structural errors, and the parser is total (never
//! panics) on arbitrary token soup.

use std::fs;
use std::path::{Path, PathBuf};
use tradefl_lint::parse;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | ".claude") {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The permissiveness contract: the item parser must swallow the
/// entire workspace — every `.rs` file under `crates/`, `src/`,
/// `tests/`, `benches/`, `examples/` — recording zero [`parse::ParseError`]s.
/// An error here means real workspace syntax the parser cannot
/// structure, which silently blinds every semantic rule to that file.
#[test]
fn every_workspace_file_parses_with_zero_errors() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_files(&root, &mut files);
    assert!(files.len() >= 80, "workspace walk found only {} files", files.len());
    let mut total_fns = 0usize;
    for path in &files {
        let src = fs::read_to_string(path).unwrap();
        let parsed = parse::parse_source(&src);
        assert!(
            parsed.errors.is_empty(),
            "{} has parse errors: {:?}",
            path.display(),
            parsed.errors
        );
        total_fns += parse::collect_fns(&parsed).len();
    }
    // Sanity floor: "zero errors" must not mean "parsed nothing".
    // The workspace holds thousands of fns; a parser bug that opaques
    // whole files away would crater this count.
    assert!(total_fns >= 1500, "only {total_fns} fns parsed across the workspace");
}

/// Every parsed fn body in the deterministic crates exposes a
/// statement spine — a parser that returned empty bodies would make
/// the dataflow pass vacuously clean.
#[test]
fn parsed_bodies_are_not_empty_shells() {
    let root = workspace_root();
    for rel in ["crates/ledger/src/codec.rs", "crates/solver/src/dbr.rs"] {
        let src = fs::read_to_string(root.join(rel)).unwrap();
        let parsed = parse::parse_source(&src);
        let fns = parse::collect_fns(&parsed);
        assert!(!fns.is_empty(), "{rel}: no fns parsed");
        let with_stmts = fns
            .iter()
            .filter(|f| f.func.body.as_ref().is_some_and(|b| !b.stmts.is_empty()))
            .count();
        assert!(
            with_stmts * 2 >= fns.len(),
            "{rel}: only {with_stmts}/{} fn bodies have statements",
            fns.len()
        );
    }
}

tradefl_runtime::props! {
    #![cases = 200]

    /// Totality under fuzzing: the parser must never panic (or loop)
    /// on arbitrary token soup, including delimiter-heavy and
    /// keyword-heavy streams that stress the recovery paths.
    fn parser_never_panics_on_arbitrary_input(g) {
        let len = g.usize(0..400);
        let mut src = String::new();
        for _ in 0..len {
            match g.usize(0..14) {
                0 => src.push_str("fn "),
                1 => src.push_str("{ "),
                2 => src.push_str("} "),
                3 => src.push_str("( "),
                4 => src.push_str(") "),
                5 => src.push_str("match "),
                6 => src.push_str("let "),
                7 => src.push_str("impl "),
                8 => src.push_str("=> "),
                9 => src.push_str(":: "),
                10 => src.push_str("x "),
                11 => src.push_str("| "),
                12 => src.push_str(&format!("{} ", g.any_u8())),
                _ => src.push(g.any_u8() as char),
            }
        }
        let parsed = parse::parse_source(&src);
        // Totality is the property; errors are allowed, panics are not.
        tradefl_runtime::prop_assert!(parsed.items.len() <= src.len() + 1);
    }
}
