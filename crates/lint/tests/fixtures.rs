//! Fixture tests: one offending snippet, one clean snippet, and one
//! `lint:allow`'d snippet per rule — the seeded-violation evidence
//! behind the CI gate (if a rule ever stops firing on its fixture,
//! this suite fails before the workspace silently loses the
//! invariant).

use tradefl_lint::rules::RULES;
use tradefl_lint::{lint_manifest, lint_source, Finding};

/// Asserts `src` at `path` yields exactly the rules in `want`
/// (order-insensitive, duplicates collapsed).
fn assert_rules(path: &str, src: &str, want: &[&str]) {
    let findings = lint_source(path, src);
    let mut got: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    got.sort();
    got.dedup();
    let mut want: Vec<&str> = want.to_vec();
    want.sort();
    assert_eq!(got, want, "findings for {path}: {findings:?}");
}

fn offends(path: &str, src: &str, rule: &str) {
    let findings = lint_source(path, src);
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "expected {rule} to fire on {path}: {findings:?}"
    );
}

fn clean(path: &str, src: &str) {
    assert_rules(path, src, &[]);
}

const SOLVER: &str = "crates/solver/src/fixture.rs";

// --- no-registry-deps -------------------------------------------------

#[test]
fn registry_deps_offending_clean_allowed() {
    let bad = lint_manifest("Cargo.toml", "[dependencies]\nrand = \"0.8\"\n");
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].rule, "no-registry-deps");

    let good = lint_manifest(
        "Cargo.toml",
        "[dependencies]\ntradefl-core = { path = \"crates/core\" }\nrt.workspace = true\n",
    );
    assert!(good.is_empty(), "{good:?}");
    // No allow escape for manifests: a registry dependency is never
    // legitimate (the build environment cannot fetch it), so the rule
    // has no annotated fixture — this is by design.
}

// --- no-hash-iteration ------------------------------------------------

#[test]
fn hash_iteration_offending_clean_allowed() {
    offends(SOLVER, "use std::collections::HashMap;\n", "no-hash-iteration");
    offends(SOLVER, "fn f(s: &HashSet<u32>) {}\n", "no-hash-iteration");
    clean(SOLVER, "use std::collections::BTreeMap;\nfn f(s: &std::collections::BTreeSet<u32>) {}\n");
    // Outside the deterministic crates the rule does not apply.
    clean("crates/runtime/src/x.rs", "use std::collections::HashMap;\n");
    // Mentions in comments/strings never fire.
    clean(SOLVER, "// a HashMap here is fine\nconst S: &str = \"HashMap\";\n");
    clean(
        SOLVER,
        "use std::collections::HashMap; // lint:allow(no-hash-iteration): lookup-only table, \
         never iterated\n",
    );
}

// --- no-wallclock -----------------------------------------------------

#[test]
fn wallclock_offending_clean_allowed() {
    offends(SOLVER, "fn f() { let t = Instant::now(); }\n", "no-wallclock");
    offends("tests/x.rs", "fn f() { let t = std::time::SystemTime::now(); }\n", "no-wallclock");
    clean(SOLVER, "fn f() { let t = tradefl_runtime::bench::Timer::start(); }\n");
    // The bench harness and runtime::bench are exempt.
    clean("crates/bench/src/lib.rs", "fn f() { let t = Instant::now(); }\n");
    clean("crates/runtime/src/bench.rs", "fn f() { let t = Instant::now(); }\n");
    clean(
        SOLVER,
        "// lint:allow(no-wallclock): timeout guard, value never reaches results\n\
         fn f() { let t = Instant::now(); }\n",
    );
}

// --- no-raw-threads ---------------------------------------------------

#[test]
fn raw_threads_offending_clean_allowed() {
    offends(SOLVER, "fn f() { std::thread::spawn(|| {}); }\n", "no-raw-threads");
    offends(SOLVER, "fn f() { thread::Builder::new(); }\n", "no-raw-threads");
    clean(SOLVER, "fn f() { tradefl_runtime::sync::pool::Pool::global().scope(|s| {}); }\n");
    // The pool implementation itself is exempt.
    clean("crates/runtime/src/sync/pool.rs", "fn f() { std::thread::spawn(|| {}); }\n");
    clean(
        SOLVER,
        "fn f() { std::thread::spawn(|| {}); } // lint:allow(no-raw-threads): detached watchdog, \
         joins before any result is read\n",
    );
}

// --- no-panic-in-lib --------------------------------------------------

#[test]
fn panic_in_lib_offending_clean_allowed() {
    offends(SOLVER, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "no-panic-in-lib");
    offends(SOLVER, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n", "no-panic-in-lib");
    offends(SOLVER, "fn f() { panic!(\"boom\"); }\n", "no-panic-in-lib");
    clean(SOLVER, "fn f(x: Option<u32>) -> Result<u32, E> { x.ok_or(E::Missing) }\n");
    // unwrap_or and friends are not panics.
    clean(SOLVER, "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n");
    // Tests, benches, examples and binaries are exempt.
    clean("crates/solver/tests/t.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    clean("examples/e.rs", "fn main() { None::<u32>.unwrap(); }\n");
    clean("src/bin/cli.rs", "fn main() { None::<u32>.unwrap(); }\n");
    clean(SOLVER, "#[cfg(test)]\nmod tests {\n fn f() { None::<u32>.unwrap(); }\n}\n");
    clean(
        SOLVER,
        "fn f(x: Option<u32>) -> u32 {\n    \
         // lint:allow(no-panic-in-lib): invariant: caller checked is_some above\n    \
         x.unwrap()\n}\n",
    );
}

// --- no-float-eq ------------------------------------------------------

#[test]
fn float_eq_offending_clean_allowed() {
    offends(SOLVER, "fn f(x: f64) -> bool { x == 0.0 }\n", "no-float-eq");
    offends(SOLVER, "fn f(x: f64) -> bool { 1.5e3 != x }\n", "no-float-eq");
    clean(SOLVER, "fn f(x: f64) -> bool { (x - 0.5).abs() < 1e-9 }\n");
    // Integer comparisons and ranges stay silent.
    clean(SOLVER, "fn f(x: usize) -> bool { x == 0 && (1..2).contains(&x) }\n");
    clean(
        SOLVER,
        "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(no-float-eq): exact-zero sentinel \
         guard before division\n",
    );
}

// --- no-alloc-in-hot-loop ---------------------------------------------

const KERNEL: &str = "crates/fl-sim/src/linalg/kernel.rs";
const MODEL: &str = "crates/fl-sim/src/model.rs";

#[test]
fn alloc_in_hot_loop_offending_clean_allowed() {
    // The kernel module is hot in its entirety.
    offends(KERNEL, "fn f() { let v: Vec<f32> = Vec::new(); }\n", "no-alloc-in-hot-loop");
    offends(KERNEL, "fn f() { let v = vec![0.0f32; 8]; }\n", "no-alloc-in-hot-loop");
    offends(KERNEL, "fn f(a: &[f32]) { let v = a.to_vec(); }\n", "no-alloc-in-hot-loop");
    offends(MODEL, "fn sgd_step_with(m: &M) { let w = m.w.clone(); }\n", "no-alloc-in-hot-loop");
    // In model.rs only the step-path fns are hot; cold fns allocate
    // freely, and other files are out of scope entirely.
    clean(MODEL, "fn new() -> Vec<f32> { Vec::new() }\n");
    clean(MODEL, "fn forward_with(ws: &mut W) { ws.h.resize(8, 0.0); }\n");
    clean("crates/fl-sim/src/fed.rs", "fn f() { let v: Vec<f32> = Vec::new(); }\n");
    // The fed.rs streaming-aggregation loop is hot too: the round
    // dispatch/merge, per-group training and per-silo SGD fns.
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn run_round(g: &Mlp) { let m = g.clone(); }\n",
        "no-alloc-in-hot-loop",
    );
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn train_group(p: &[f32]) { let v = p.to_vec(); }\n",
        "no-alloc-in-hot-loop",
    );
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn local_train() { let order: Vec<usize> = Vec::new(); }\n",
        "no-alloc-in-hot-loop",
    );
    clean("crates/fl-sim/src/fed.rs", "fn train_federated_grouped() { let v = vec![0.0f64; 8]; }\n");
    clean(SOLVER, "fn f() { let v = vec![1]; }\n");
    // Test modules inside the hot files are exempt (in_tests: false).
    clean(KERNEL, "#[cfg(test)]\nmod tests {\n fn f() { let v = vec![1]; }\n}\n");
    clean(
        KERNEL,
        "fn new() -> Self {\n    \
         // lint:allow(no-alloc-in-hot-loop): constructor is the cold path\n    \
         Self { buf: Vec::new() }\n}\n",
    );
}

#[test]
fn alloc_rule_brace_matching_tracks_fn_bodies() {
    // A hot fn followed by a cold fn: the span must close at the hot
    // fn's final brace, not swallow the rest of the file.
    let src = "fn evaluate_with(ws: &mut W) {\n    \
               if x { y(); }\n}\n\
               fn save() -> Vec<u8> { Vec::new() }\n";
    clean(MODEL, src);
    // Nested braces (closures) inside the hot body stay covered.
    offends(
        MODEL,
        "fn forward_with(ws: &mut W) {\n    \
         layers.iter().for_each(|l| { let v = l.w.clone(); });\n}\n",
        "no-alloc-in-hot-loop",
    );
}

// --- unbounded-wire-alloc --------------------------------------------

const LEDGER: &str = "crates/ledger/src/fixture.rs";

#[test]
fn wire_alloc_offending_clean_allowed() {
    // The seeded regression: a wire-declared length straight into
    // `with_capacity`.
    offends(
        SOLVER,
        "fn f(buf: &mut &[u8]) -> Result<Vec<u8>, E> {\n    \
         let n = buf.try_get_u64_le().map_err(short)? as usize;\n    \
         let v = Vec::with_capacity(n);\n    Ok(v)\n}\n",
        "unbounded-wire-alloc",
    );
    // The other sink forms: `.reserve` and `vec![x; n]`.
    offends(
        SOLVER,
        "fn f(buf: &mut &[u8], out: &mut Vec<u8>) {\n    \
         let n = decode_len(buf) as usize;\n    out.reserve(n);\n}\n",
        "unbounded-wire-alloc",
    );
    offends(
        SOLVER,
        "fn f(buf: &mut &[u8]) -> Vec<u8> {\n    \
         let n = buf.try_get_u32_le().map_or(0, |v| v as usize);\n    vec![0u8; n]\n}\n",
        "unbounded-wire-alloc",
    );
    // Taint survives one call level: the length is produced behind a
    // helper whose summary says "returns wire-tainted".
    offends(
        SOLVER,
        "fn read_count(buf: &mut &[u8]) -> usize {\n    \
         buf.try_get_u64_le().map_or(0, |v| v as usize)\n}\n\
         fn g(buf: &mut &[u8]) -> Vec<u8> {\n    \
         let n = read_count(buf);\n    Vec::with_capacity(n)\n}\n",
        "unbounded-wire-alloc",
    );
    // Sanitized flows are clean: bounded_count, a .min cap, and the
    // length of already-materialized data.
    clean(
        SOLVER,
        "fn f(buf: &mut &[u8]) -> Result<Vec<u8>, E> {\n    \
         let n = bounded_count(buf.try_get_u64_le().map_err(short)? as usize, \
         buf.remaining(), 8)?;\n    Ok(Vec::with_capacity(n))\n}\n",
    );
    clean(
        SOLVER,
        "fn f(buf: &mut &[u8]) -> Result<Vec<u8>, E> {\n    \
         let n = (buf.try_get_u64_le().map_err(short)? as usize).min(64);\n    \
         Ok(Vec::with_capacity(n))\n}\n",
    );
    clean(
        SOLVER,
        "fn f(payload: Vec<u8>) -> Vec<u8> {\n    \
         let decoded = decode_items(payload);\n    \
         Vec::with_capacity(decoded.len())\n}\n",
    );
    // Out of scope: tests allocate from whatever lengths they like.
    clean(
        "crates/solver/tests/t.rs",
        "fn f(buf: &mut &[u8]) -> Vec<u8> {\n    \
         let n = buf.try_get_u64_le().map_or(0, |v| v as usize);\n    \
         Vec::with_capacity(n)\n}\n",
    );
    clean(
        SOLVER,
        "fn f(buf: &mut &[u8]) -> Vec<u8> {\n    \
         let n = buf.try_get_u64_le().map_or(0, |v| v as usize);\n    \
         // lint:allow(unbounded-wire-alloc): n is pre-validated by the framing layer cap\n    \
         Vec::with_capacity(n)\n}\n",
    );
}

// --- no-unchecked-money-arith ----------------------------------------

#[test]
fn money_arith_offending_clean_allowed() {
    // Money by declared type, by name, and by wrapped field in a money
    // impl.
    offends(LEDGER, "fn f(a: Wei, b: Wei) -> Wei { a + b }\n", "no-unchecked-money-arith");
    offends(
        LEDGER,
        "fn f(balance: u128, fee: u128) -> u128 { balance - fee }\n",
        "no-unchecked-money-arith",
    );
    offends(
        LEDGER,
        "fn bump(acct: &mut Account) { acct.nonce += 1; }\n",
        "no-unchecked-money-arith",
    );
    offends(
        LEDGER,
        "impl Fixed {\n    fn double(self) -> Fixed { Fixed(self.0 * 2) }\n}\n",
        "no-unchecked-money-arith",
    );
    // Checked/saturating forms and non-money arithmetic are clean.
    clean(
        LEDGER,
        "fn f(a: Wei, b: Wei) -> Wei { a.checked_add(b).unwrap_or(Wei::ZERO) }\n",
    );
    clean(LEDGER, "fn f(count: u64, step: u64) -> u64 { count + step }\n");
    // The rule is a ledger-crate contract: identical code elsewhere is
    // out of scope.
    clean(SOLVER, "fn f(a: Wei, b: Wei) -> Wei { a + b }\n");
    clean(
        LEDGER,
        "fn f(a: Wei, b: Wei) -> Wei {\n    \
         // lint:allow(no-unchecked-money-arith): Wei::Add is checked internally; abort beats wrap\n    \
         a + b\n}\n",
    );
}

// --- no-nested-pool-scope --------------------------------------------

#[test]
fn nested_pool_scope_offending_clean_allowed() {
    // Direct lexical nesting.
    offends(
        SOLVER,
        "fn f(pool: &Pool, jobs: Vec<J>) {\n    \
         pool.scope(|s| {\n        pool.map(jobs);\n    });\n}\n",
        "no-nested-pool-scope",
    );
    // The seeded regression: the nested entry hides behind one call.
    offends(
        SOLVER,
        "fn inner(pool: &Pool, jobs: Vec<J>) {\n    pool.map(jobs);\n}\n\
         fn outer(pool: &Pool, jobs: Vec<J>) {\n    \
         pool.scope(|s| {\n        inner(pool, jobs);\n    });\n}\n",
        "no-nested-pool-scope",
    );
    // Serial helpers and iterator `.map` inside pooled closures are
    // clean — and the pool implementation itself is exempt.
    clean(
        SOLVER,
        "fn payoff(i: usize) -> i64 { 0 }\n\
         fn f(pool: &Pool, xs: Vec<usize>) {\n    \
         pool.scope(|s| {\n        let v = payoff(3);\n    });\n}\n",
    );
    clean(
        SOLVER,
        "fn f(items: Vec<u32>) -> Vec<u32> { items.iter().map(|x| x + 1).collect() }\n\
         fn g(pool: &Pool) {\n    pool.scope(|s| { f(Vec::new()); });\n}\n",
    );
    clean(
        "crates/runtime/src/sync/pool.rs",
        "fn f(pool: &Pool, jobs: Vec<J>) {\n    \
         pool.scope(|s| {\n        pool.map(jobs);\n    });\n}\n",
    );
    clean(
        SOLVER,
        "fn f(pool: &Pool, jobs: Vec<J>) {\n    \
         pool.scope(|s| {\n        \
         // lint:allow(no-nested-pool-scope): inner dispatch checks workers() and falls back to serial\n        \
         pool.map(jobs);\n    });\n}\n",
    );
}

// --- unused-result ----------------------------------------------------

#[test]
fn unused_result_offending_clean_allowed() {
    // A statement-position call to a fn every definition of which
    // returns Result, with nothing consuming it.
    offends(
        SOLVER,
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn f() {\n    save();\n}\n",
        "unused-result",
    );
    offends(
        SOLVER,
        "impl S {\n    fn commit(&mut self) -> Result<(), E> { Ok(()) }\n}\n\
         fn f(s: &mut S) {\n    s.commit();\n}\n",
        "unused-result",
    );
    // Propagated, bound, or matched results are consumed.
    clean(
        SOLVER,
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn f() -> Result<(), E> {\n    save()?;\n    Ok(())\n}\n",
    );
    clean(
        SOLVER,
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn f() {\n    let _ = save();\n}\n",
    );
    clean(
        SOLVER,
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn g() -> bool { save().is_ok() }\n",
    );
    // Fns that do not (always) return Result never match.
    clean(SOLVER, "fn ping() {}\nfn f() {\n    ping();\n}\n");
    // Tests discard results freely.
    clean(
        "crates/solver/tests/t.rs",
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn f() {\n    save();\n}\n",
    );
    clean(
        SOLVER,
        "fn save() -> Result<(), E> { Ok(()) }\n\
         fn f() {\n    \
         // lint:allow(unused-result): best-effort flush on the shutdown path\n    \
         save();\n}\n",
    );
}

// --- allow-span-precision ---------------------------------------------

#[test]
fn allow_span_precision_offending_and_clean() {
    // Floating: the next line is blank, so the allow binds to nothing.
    assert_rules(
        SOLVER,
        "fn f() {}\n// lint:allow(no-panic-in-lib): floats over nothing\n\nfn g() {}\n",
        &["allow-span-precision"],
    );
    // Floating at EOF.
    assert_rules(
        SOLVER,
        "fn f() {}\n// lint:allow(no-float-eq): trailing remark\n",
        &["allow-span-precision"],
    );
    // Bound allows (trailing, above a statement, above an item) do not
    // trip it.
    clean(
        SOLVER,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() } \
         // lint:allow(no-panic-in-lib): invariant: x is Some\n",
    );
    clean(
        SOLVER,
        "// lint:allow(no-panic-in-lib): demo: covers the whole item\n\
         fn f(x: Option<u32>) -> u32 {\n    let y = 1;\n    x.unwrap() + y\n}\n",
    );
    // Meta rules are not suppressible: an allow cannot excuse a
    // floating allow.
    offends(
        SOLVER,
        "fn f() {}\n\
         // lint:allow(allow-span-precision): no\n\
         // lint:allow(no-float-eq): floats over nothing\n\n",
        "allow-span-precision",
    );
}

#[test]
fn double_allow_distinguishes_the_stale_marker() {
    // Two allows of the same rule in one file: best-match attribution
    // must keep the load-bearing one and report the stale one at its
    // own line.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() } \
               // lint:allow(no-panic-in-lib): invariant: x is Some\n\
               fn g(y: u32) -> u32 { y + 1 } \
               // lint:allow(no-panic-in-lib): stale: g no longer unwraps\n";
    let findings = lint_source(SOLVER, src);
    let unused: Vec<u32> =
        findings.iter().filter(|f| f.rule == "unused-allow").map(|f| f.line).collect();
    assert_eq!(unused, vec![2], "{findings:?}");
    assert!(
        !findings.iter().any(|f| f.rule == "no-panic-in-lib"),
        "the live allow must keep suppressing: {findings:?}"
    );
}

// --- meta rules -------------------------------------------------------

#[test]
fn meta_rules_offending_and_clean() {
    assert_rules(
        SOLVER,
        "// lint:allow(no-panic-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        &["bad-allow", "no-panic-in-lib"],
    );
    assert_rules(SOLVER, "// lint:allow(made-up-rule): reason\n", &["bad-allow"]);
    assert_rules(
        SOLVER,
        "// lint:allow(no-float-eq): nothing here compares floats\nfn f() {}\n",
        &["unused-allow"],
    );
}

// --- engine-wide invariants ------------------------------------------

#[test]
fn every_rule_has_explain_text_and_fixture_coverage() {
    for r in RULES {
        assert!(!r.summary.is_empty() && !r.rationale.is_empty(), "rule {} undocumented", r.id);
    }
    let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    for required in [
        "no-registry-deps",
        "no-hash-iteration",
        "no-wallclock",
        "no-raw-threads",
        "no-panic-in-lib",
        "no-float-eq",
        "no-alloc-in-hot-loop",
        "bad-allow",
        "unused-allow",
        "unbounded-wire-alloc",
        "no-unchecked-money-arith",
        "no-nested-pool-scope",
        "unused-result",
        "allow-span-precision",
    ] {
        assert!(ids.contains(&required), "missing rule {required}");
    }
}

#[test]
fn the_workspace_itself_is_clean() {
    // The gate ci.sh relies on, as a test: linting the real workspace
    // from the crate's own location must produce zero findings.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = tradefl_lint::lint_workspace(&root).expect("workspace readable");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f: &Finding| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(findings.is_empty(), "workspace has lint findings:\n{}", rendered.join("\n"));
}
