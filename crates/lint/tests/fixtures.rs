//! Fixture tests: one offending snippet, one clean snippet, and one
//! `lint:allow`'d snippet per rule — the seeded-violation evidence
//! behind the CI gate (if a rule ever stops firing on its fixture,
//! this suite fails before the workspace silently loses the
//! invariant).

use tradefl_lint::rules::RULES;
use tradefl_lint::{lint_manifest, lint_source, Finding};

/// Asserts `src` at `path` yields exactly the rules in `want`
/// (order-insensitive, duplicates collapsed).
fn assert_rules(path: &str, src: &str, want: &[&str]) {
    let findings = lint_source(path, src);
    let mut got: Vec<&str> = findings.iter().map(|f| f.rule.as_str()).collect();
    got.sort();
    got.dedup();
    let mut want: Vec<&str> = want.to_vec();
    want.sort();
    assert_eq!(got, want, "findings for {path}: {findings:?}");
}

fn offends(path: &str, src: &str, rule: &str) {
    let findings = lint_source(path, src);
    assert!(
        findings.iter().any(|f| f.rule == rule),
        "expected {rule} to fire on {path}: {findings:?}"
    );
}

fn clean(path: &str, src: &str) {
    assert_rules(path, src, &[]);
}

const SOLVER: &str = "crates/solver/src/fixture.rs";

// --- no-registry-deps -------------------------------------------------

#[test]
fn registry_deps_offending_clean_allowed() {
    let bad = lint_manifest("Cargo.toml", "[dependencies]\nrand = \"0.8\"\n");
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].rule, "no-registry-deps");

    let good = lint_manifest(
        "Cargo.toml",
        "[dependencies]\ntradefl-core = { path = \"crates/core\" }\nrt.workspace = true\n",
    );
    assert!(good.is_empty(), "{good:?}");
    // No allow escape for manifests: a registry dependency is never
    // legitimate (the build environment cannot fetch it), so the rule
    // has no annotated fixture — this is by design.
}

// --- no-hash-iteration ------------------------------------------------

#[test]
fn hash_iteration_offending_clean_allowed() {
    offends(SOLVER, "use std::collections::HashMap;\n", "no-hash-iteration");
    offends(SOLVER, "fn f(s: &HashSet<u32>) {}\n", "no-hash-iteration");
    clean(SOLVER, "use std::collections::BTreeMap;\nfn f(s: &std::collections::BTreeSet<u32>) {}\n");
    // Outside the deterministic crates the rule does not apply.
    clean("crates/runtime/src/x.rs", "use std::collections::HashMap;\n");
    // Mentions in comments/strings never fire.
    clean(SOLVER, "// a HashMap here is fine\nconst S: &str = \"HashMap\";\n");
    clean(
        SOLVER,
        "use std::collections::HashMap; // lint:allow(no-hash-iteration): lookup-only table, \
         never iterated\n",
    );
}

// --- no-wallclock -----------------------------------------------------

#[test]
fn wallclock_offending_clean_allowed() {
    offends(SOLVER, "fn f() { let t = Instant::now(); }\n", "no-wallclock");
    offends("tests/x.rs", "fn f() { let t = std::time::SystemTime::now(); }\n", "no-wallclock");
    clean(SOLVER, "fn f() { let t = tradefl_runtime::bench::Timer::start(); }\n");
    // The bench harness and runtime::bench are exempt.
    clean("crates/bench/src/lib.rs", "fn f() { let t = Instant::now(); }\n");
    clean("crates/runtime/src/bench.rs", "fn f() { let t = Instant::now(); }\n");
    clean(
        SOLVER,
        "// lint:allow(no-wallclock): timeout guard, value never reaches results\n\
         fn f() { let t = Instant::now(); }\n",
    );
}

// --- no-raw-threads ---------------------------------------------------

#[test]
fn raw_threads_offending_clean_allowed() {
    offends(SOLVER, "fn f() { std::thread::spawn(|| {}); }\n", "no-raw-threads");
    offends(SOLVER, "fn f() { thread::Builder::new(); }\n", "no-raw-threads");
    clean(SOLVER, "fn f() { tradefl_runtime::sync::pool::Pool::global().scope(|s| {}); }\n");
    // The pool implementation itself is exempt.
    clean("crates/runtime/src/sync/pool.rs", "fn f() { std::thread::spawn(|| {}); }\n");
    clean(
        SOLVER,
        "fn f() { std::thread::spawn(|| {}); } // lint:allow(no-raw-threads): detached watchdog, \
         joins before any result is read\n",
    );
}

// --- no-panic-in-lib --------------------------------------------------

#[test]
fn panic_in_lib_offending_clean_allowed() {
    offends(SOLVER, "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n", "no-panic-in-lib");
    offends(SOLVER, "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n", "no-panic-in-lib");
    offends(SOLVER, "fn f() { panic!(\"boom\"); }\n", "no-panic-in-lib");
    clean(SOLVER, "fn f(x: Option<u32>) -> Result<u32, E> { x.ok_or(E::Missing) }\n");
    // unwrap_or and friends are not panics.
    clean(SOLVER, "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_default()) }\n");
    // Tests, benches, examples and binaries are exempt.
    clean("crates/solver/tests/t.rs", "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n");
    clean("examples/e.rs", "fn main() { None::<u32>.unwrap(); }\n");
    clean("src/bin/cli.rs", "fn main() { None::<u32>.unwrap(); }\n");
    clean(SOLVER, "#[cfg(test)]\nmod tests {\n fn f() { None::<u32>.unwrap(); }\n}\n");
    clean(
        SOLVER,
        "fn f(x: Option<u32>) -> u32 {\n    \
         // lint:allow(no-panic-in-lib): invariant: caller checked is_some above\n    \
         x.unwrap()\n}\n",
    );
}

// --- no-float-eq ------------------------------------------------------

#[test]
fn float_eq_offending_clean_allowed() {
    offends(SOLVER, "fn f(x: f64) -> bool { x == 0.0 }\n", "no-float-eq");
    offends(SOLVER, "fn f(x: f64) -> bool { 1.5e3 != x }\n", "no-float-eq");
    clean(SOLVER, "fn f(x: f64) -> bool { (x - 0.5).abs() < 1e-9 }\n");
    // Integer comparisons and ranges stay silent.
    clean(SOLVER, "fn f(x: usize) -> bool { x == 0 && (1..2).contains(&x) }\n");
    clean(
        SOLVER,
        "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(no-float-eq): exact-zero sentinel \
         guard before division\n",
    );
}

// --- no-alloc-in-hot-loop ---------------------------------------------

const KERNEL: &str = "crates/fl-sim/src/linalg/kernel.rs";
const MODEL: &str = "crates/fl-sim/src/model.rs";

#[test]
fn alloc_in_hot_loop_offending_clean_allowed() {
    // The kernel module is hot in its entirety.
    offends(KERNEL, "fn f() { let v: Vec<f32> = Vec::new(); }\n", "no-alloc-in-hot-loop");
    offends(KERNEL, "fn f() { let v = vec![0.0f32; 8]; }\n", "no-alloc-in-hot-loop");
    offends(KERNEL, "fn f(a: &[f32]) { let v = a.to_vec(); }\n", "no-alloc-in-hot-loop");
    offends(MODEL, "fn sgd_step_with(m: &M) { let w = m.w.clone(); }\n", "no-alloc-in-hot-loop");
    // In model.rs only the step-path fns are hot; cold fns allocate
    // freely, and other files are out of scope entirely.
    clean(MODEL, "fn new() -> Vec<f32> { Vec::new() }\n");
    clean(MODEL, "fn forward_with(ws: &mut W) { ws.h.resize(8, 0.0); }\n");
    clean("crates/fl-sim/src/fed.rs", "fn f() { let v: Vec<f32> = Vec::new(); }\n");
    // The fed.rs streaming-aggregation loop is hot too: the round
    // dispatch/merge, per-group training and per-silo SGD fns.
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn run_round(g: &Mlp) { let m = g.clone(); }\n",
        "no-alloc-in-hot-loop",
    );
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn train_group(p: &[f32]) { let v = p.to_vec(); }\n",
        "no-alloc-in-hot-loop",
    );
    offends(
        "crates/fl-sim/src/fed.rs",
        "fn local_train() { let order: Vec<usize> = Vec::new(); }\n",
        "no-alloc-in-hot-loop",
    );
    clean("crates/fl-sim/src/fed.rs", "fn train_federated_grouped() { let v = vec![0.0f64; 8]; }\n");
    clean(SOLVER, "fn f() { let v = vec![1]; }\n");
    // Test modules inside the hot files are exempt (in_tests: false).
    clean(KERNEL, "#[cfg(test)]\nmod tests {\n fn f() { let v = vec![1]; }\n}\n");
    clean(
        KERNEL,
        "fn new() -> Self {\n    \
         // lint:allow(no-alloc-in-hot-loop): constructor is the cold path\n    \
         Self { buf: Vec::new() }\n}\n",
    );
}

#[test]
fn alloc_rule_brace_matching_tracks_fn_bodies() {
    // A hot fn followed by a cold fn: the span must close at the hot
    // fn's final brace, not swallow the rest of the file.
    let src = "fn evaluate_with(ws: &mut W) {\n    \
               if x { y(); }\n}\n\
               fn save() -> Vec<u8> { Vec::new() }\n";
    clean(MODEL, src);
    // Nested braces (closures) inside the hot body stay covered.
    offends(
        MODEL,
        "fn forward_with(ws: &mut W) {\n    \
         layers.iter().for_each(|l| { let v = l.w.clone(); });\n}\n",
        "no-alloc-in-hot-loop",
    );
}

// --- meta rules -------------------------------------------------------

#[test]
fn meta_rules_offending_and_clean() {
    assert_rules(
        SOLVER,
        "// lint:allow(no-panic-in-lib)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        &["bad-allow", "no-panic-in-lib"],
    );
    assert_rules(SOLVER, "// lint:allow(made-up-rule): reason\n", &["bad-allow"]);
    assert_rules(
        SOLVER,
        "// lint:allow(no-float-eq): nothing here compares floats\nfn f() {}\n",
        &["unused-allow"],
    );
}

// --- engine-wide invariants ------------------------------------------

#[test]
fn every_rule_has_explain_text_and_fixture_coverage() {
    for r in RULES {
        assert!(!r.summary.is_empty() && !r.rationale.is_empty(), "rule {} undocumented", r.id);
    }
    let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
    for required in [
        "no-registry-deps",
        "no-hash-iteration",
        "no-wallclock",
        "no-raw-threads",
        "no-panic-in-lib",
        "no-float-eq",
        "no-alloc-in-hot-loop",
        "bad-allow",
        "unused-allow",
    ] {
        assert!(ids.contains(&required), "missing rule {required}");
    }
}

#[test]
fn the_workspace_itself_is_clean() {
    // The gate ci.sh relies on, as a test: linting the real workspace
    // from the crate's own location must produce zero findings.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = tradefl_lint::lint_workspace(&root).expect("workspace readable");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f: &Finding| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(findings.is_empty(), "workspace has lint findings:\n{}", rendered.join("\n"));
}
