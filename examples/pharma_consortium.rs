//! A MELLODDY-style pharmaceutical consortium (the paper's §I
//! motivating scenario): competing drug-discovery companies jointly
//! train a model, with TradeFL compensating the coopetition damage and
//! settling the compensation on a private chain so that nobody can
//! repudiate it.
//!
//! Run with: `cargo run --release --example pharma_consortium`

use tradefl::ledger::settlement::SettlementSession;
use tradefl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Six companies: two big-pharma rivals (intense competition), two
    // mid-size specialists (moderate competition with everyone), and
    // two biotech startups (small data, little market overlap).
    let companies = [
        ("helvetia-pharma", 25e9, 2400.0, 5.0e9),
        ("rhein-labs", 24e9, 2300.0, 4.6e9),
        ("adriatic-biosci", 20e9, 1500.0, 3.8e9),
        ("baltic-therapeutics", 19e9, 1400.0, 3.6e9),
        ("startup-amino", 15e9, 800.0, 3.2e9),
        ("startup-helix", 15e9, 750.0, 3.0e9),
    ];
    let orgs: Vec<_> = companies
        .iter()
        .map(|&(name, bits, p, f_max)| {
            tradefl::core::Organization::builder(name)
                .data_bits(bits)
                .samples(1600)
                .profitability(p)
                .eta(100.0)
                .compute_levels(vec![0.4 * f_max, 0.6 * f_max, 0.8 * f_max, f_max])
                .build()
        })
        .collect::<Result<_, _>>()?;

    // Competition intensities ρ: rivals compete hard, startups barely.
    let n = orgs.len();
    let mut rho = vec![vec![0.0; n]; n];
    let set = |i: usize, j: usize, v: f64, rho: &mut Vec<Vec<f64>>| {
        rho[i][j] = v;
        rho[j][i] = v;
    };
    set(0, 1, 0.12, &mut rho); // the big-pharma rivalry
    set(2, 3, 0.08, &mut rho); // specialist overlap
    for i in 0..4 {
        for j in 4..6 {
            set(i, j, 0.015, &mut rho); // startups vs incumbents
        }
    }
    set(0, 2, 0.04, &mut rho);
    set(1, 3, 0.04, &mut rho);
    set(4, 5, 0.02, &mut rho);

    let market = Market::new(orgs, rho, MechanismParams::paper_default())?;
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());

    // Without compensation, the fiercest competitors hold back data.
    let wpr = DbrSolver::with_options(tradefl::solver::DbrOptions {
        objective: tradefl::solver::Objective::WithoutRedistribution,
        ..Default::default()
    })
    .solve(&game)?;
    // With TradeFL's payoff redistribution:
    let dbr = DbrSolver::new().solve(&game)?;
    println!("contributed data: without compensation {:.2}, with TradeFL {:.2} (of {n})",
        wpr.total_fraction, dbr.total_fraction);
    println!("social welfare:   without compensation {:.1}, with TradeFL {:.1}",
        wpr.welfare, dbr.welfare);
    assert!(dbr.total_fraction > wpr.total_fraction);

    println!("\n  company              d_i     payoff      R_i (receives<0 pays)");
    for (i, s) in dbr.profile.iter().enumerate() {
        println!(
            "  {:<20} {:>5.3}  {:>9.1}  {:>8.2}",
            game.market().org(i).name(),
            s.d,
            game.payoff(&dbr.profile, i),
            game.redistribution(&dbr.profile, i),
        );
    }

    // Settle the compensation credibly on the private chain (Fig. 3).
    let session = SettlementSession::deploy(&game)?;
    let report = session.settle(&game, &dbr.profile)?;
    println!(
        "\non-chain settlement: {} blocks, {} gas, max |on-chain - Eq.(10)| = {:.2e}",
        report.chain_height, report.total_gas, report.max_abs_error
    );
    assert!(report.consistent(1e-3));
    session.web3().verify_chain()?;
    println!("chain verified; every step recorded for arbitration:");
    for event in ["DepositSubmitted", "ContributionSubmitted", "PayoffTransferred"] {
        println!("  {event}: {} records", session.web3().logs_by_event(event).len());
    }
    Ok(())
}
