//! Quickstart: sample a Table II market, find the Nash equilibrium with
//! the distributed DBR algorithm, and audit the mechanism properties.
//!
//! Run with: `cargo run --release --example quickstart`

use tradefl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Ten organizations in coopetition (paper Table II parameters).
    let market = MarketConfig::table_ii().build(42)?;
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());

    // 2. Each organization repeatedly best-responds (Algorithm 2) until
    //    nobody wants to deviate — a Nash equilibrium of the coopetition
    //    game (Theorem 1 guarantees convergence).
    let equilibrium = DbrSolver::new().solve(&game)?;
    println!(
        "DBR converged in {} rounds; social welfare {:.1}, total data {:.2} of {}",
        equilibrium.iterations,
        equilibrium.welfare,
        equilibrium.total_fraction,
        game.market().len(),
    );

    println!("\n  org        d_i      f_i(GHz)   payoff      R_i");
    for (i, s) in equilibrium.profile.iter().enumerate() {
        let org = game.market().org(i);
        println!(
            "  {:<8} {:>6.3}  {:>10.2}  {:>8.1}  {:>7.2}",
            org.name(),
            s.d,
            org.frequency(s.level) / 1e9,
            game.payoff(&equilibrium.profile, i),
            game.redistribution(&equilibrium.profile, i),
        );
    }

    // 3. Theorem 2's properties hold at the equilibrium.
    let audit = MechanismAudit::evaluate(&game, &equilibrium.profile);
    assert!(audit.individually_rational(1e-9), "IR: every payoff non-negative");
    assert!(audit.budget_balanced_rel(1e-9), "BB: redistribution sums to zero");
    println!(
        "\nmechanism audit: min payoff {:.1} (IR ok), sum R_i = {:.2e} (BB ok)",
        audit.min_payoff, audit.redistribution_sum
    );
    Ok(())
}
