//! Heterogeneous silos: non-i.i.d. data, asynchronous training, and
//! per-organization personalization — the extensions around the paper's
//! footnotes 2 and 4 and its stated future work (§VII).
//!
//! A TradeFL equilibrium fixes *how much* each organization contributes;
//! this example shows the training side coping with *how different* the
//! silos are:
//! 1. shards drawn with a Dirichlet label skew (non-i.i.d.),
//! 2. trained asynchronously under Eq. (2) latencies,
//! 3. personalized per organization afterwards.
//!
//! Run with: `cargo run --release --example heterogeneous_silos`

use tradefl::fl::async_fed::{train_async, AsyncConfig, OrgTiming};
use tradefl::fl::data::{dirichlet_shard, generate, label_skew};
use tradefl::fl::model::Mlp;
use tradefl::fl::personalize::{personalize, PersonalizeConfig};
use tradefl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = MarketConfig::table_ii().with_orgs(6).build(7)?;
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let eq = DbrSolver::new().solve(&game)?;
    println!(
        "equilibrium: sum d = {:.2}, welfare {:.1}",
        eq.total_fraction, eq.welfare
    );

    // 1. Non-i.i.d. shards (each org's silo is label-skewed).
    let n = game.market().len();
    let sizes: Vec<usize> = game.market().orgs().iter().map(|o| o.samples()).collect();
    let total: usize = sizes.iter().sum();
    let pool = generate(DatasetKind::FmnistLike, total + 1200, 7);
    let shards = dirichlet_shard(&pool.take(total), &sizes, 0.4, 7);
    let test = pool.shard(&[total, 1200]).pop().expect("test shard");
    println!("label skew of the partition: {:.3} (0 = iid)", label_skew(&shards));

    // 2. Asynchronous training at the equilibrium contributions, with
    //    Eq. (2) latencies.
    let fractions: Vec<f64> = (0..n).map(|i| eq.profile[i].d).collect();
    let timings: Vec<OrgTiming> = (0..n)
        .map(|i| {
            let org = game.market().org(i);
            OrgTiming {
                comm: org.comm_time(),
                compute: org.training_time(eq.profile[i].d, org.frequency(eq.profile[i].level)),
            }
        })
        .collect();
    let slowest = timings.iter().map(OrgTiming::latency).fold(0.0f64, f64::max);
    let config = AsyncConfig {
        updates: 100_000,
        time_budget: Some(slowest * 10.0),
        lr: 0.1,
        seed: 7,
        ..AsyncConfig::default()
    };
    let global = Mlp::for_kind(ModelKind::AlexnetLike, test.dim(), test.classes, 7);
    let out = train_async(global, &shards, &test, &fractions, &timings, &config)?;
    println!(
        "async training: {} server updates in {:.0}s simulated, accuracy {:.3} (max staleness {})",
        out.updates.len(),
        out.elapsed,
        out.final_accuracy(),
        out.max_staleness()
    );

    // 3. Personalization: each org adapts the global model to its own
    //    (skewed) distribution.
    println!("\n  org     global acc   personalized   gain");
    let mut improved = 0;
    for (i, shard) in shards.iter().enumerate() {
        let n_local = shard.len();
        let train = shard.take(n_local * 4 / 5);
        let local_test = shard.shard(&[n_local * 4 / 5, n_local / 5]).pop().unwrap();
        let p = personalize(&out.model, &train, &local_test, &PersonalizeConfig::default());
        println!(
            "  org-{i}   {:>9.3}   {:>12.3}   {:>+.3}",
            p.global_accuracy,
            p.personalized_accuracy,
            p.gain()
        );
        if p.gain() > 0.0 {
            improved += 1;
        }
    }
    println!("\npersonalization improved {improved}/{n} organizations on their local data");
    Ok(())
}
