//! The persistent market engine as a daemon: N concurrent trading
//! sessions under an open-loop Poisson arrival process, block
//! production on a cadence, and (optionally) a seeded fault schedule —
//! dropped/duplicated/delayed/corrupted gossip plus kill-and-restart
//! of validators and Byzantine proposers that tamper with their own
//! blocks — all inside the deterministic simulation.
//!
//! Run with: `cargo run --release --example market_daemon`
//!
//! Flags:
//!   --seed N        engine seed (default 42); same seed, same run
//!   --sessions N    concurrent market sessions (default 3)
//!   --validators N  validator replicas (default 4)
//!   --faults        derive a fault schedule from the seed
//!   --fault-seed N  derive the fault schedule from a separate seed
//!   --byzantine     derive a Byzantine-proposer schedule from the seed
//!   --shrink-demo N shrink the repair-forcing DST schedule at seed N
//!                   to a minimal one and print it (exits non-zero if
//!                   the minimized schedule is not strictly smaller)
//!   --trace PATH    write the observability stream (tradefl-trace/v1)
//!
//! Exits non-zero if the surviving validators do not converge to
//! bit-identical state or any session fails to settle.

use tradefl_engine::{Engine, EngineConfig, SessionSpec};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::{ByzantineConfig, FaultConfig};

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

/// `--shrink-demo SEED`: run the structural shrinker against the
/// repair-triggering DST property and print the minimal schedule.
fn shrink_demo(seed: u64) -> ! {
    println!("shrinking the repair-forcing schedule at seed {seed}...");
    match tradefl_engine::shrink_repair_schedule(seed) {
        None => {
            eprintln!("seed {seed} draws a quiet schedule (no repairs) — nothing to shrink");
            std::process::exit(1);
        }
        Some(outcome) => {
            println!("  tape draws : {} -> {}", outcome.initial_draws, outcome.minimized_draws);
            println!("  prop evals : {}", outcome.evals);
            println!("  minimal    : {}", outcome.scenario);
            println!("  failure    : {}", outcome.msg);
            if outcome.minimized_draws < outcome.initial_draws {
                std::process::exit(0);
            }
            eprintln!("FAILED: shrinker did not reduce the schedule");
            std::process::exit(1);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(shrink_seed) = flag_value(&args, "--shrink-demo") {
        shrink_demo(shrink_seed);
    }
    let trace = obs::trace_path_from_args();
    let seed = flag_value(&args, "--seed").unwrap_or(42);
    let sessions = flag_value(&args, "--sessions").unwrap_or(3) as usize;
    let validators = flag_value(&args, "--validators").unwrap_or(4) as usize;
    let horizon = 1u64 << 10;

    let fault_seed = flag_value(&args, "--fault-seed")
        .or_else(|| args.iter().any(|a| a == "--faults").then_some(seed));
    let faults = match fault_seed {
        Some(fs) => FaultConfig::from_seed(fs, validators, horizon),
        None => FaultConfig::none(),
    };
    let byzantine = if args.iter().any(|a| a == "--byzantine") {
        ByzantineConfig::from_seed(seed)
    } else {
        ByzantineConfig::none()
    };

    let config = EngineConfig {
        validators,
        sessions: (0..sessions)
            .map(|s| SessionSpec {
                name: format!("market-{s}"),
                orgs: 3 + s % 3,
                seed: seed.wrapping_add(s as u64),
            })
            .collect(),
        batch_interval: 8,
        mean_arrival_gap: 3.0,
        admission_capacity: 32,
        horizon,
        faults,
        byzantine: byzantine.clone(),
        ..EngineConfig::default()
    };

    println!(
        "market daemon: {} sessions, {} validators, seed {}{}{}",
        sessions,
        validators,
        seed,
        match fault_seed {
            Some(fs) => format!(", fault schedule from seed {fs}"),
            None => ", fault-free".into(),
        },
        if byzantine.tamper_p > 0.0 {
            format!(", Byzantine proposers (tamper_p={:.2})", byzantine.tamper_p)
        } else {
            String::new()
        }
    );

    let mut engine = Engine::new(config, seed)?;
    let report = engine.run()?;

    println!("\nafter {} simulated ticks:", report.ticks);
    println!("  chain height     : {}", report.final_height);
    println!("  blocks mined     : {} ({} batch ticks)", report.blocks, report.batches);
    println!("  backpressure     : {} deferred arrivals", report.backpressure);
    println!("  ledger heals     : {} (crash recovery + divergence repair)", report.heals);
    println!("  byzantine rounds : {} (tampered proposals rejected)", report.byzantine_rounds);
    println!("  tx re-queues     : {} (rounds lost to dead/lying proposers)", report.requeues);
    println!("  survivors        : {:?}", report.survivors);
    println!("  sessions settled : {}/{}", report.sessions_settled, report.sessions_total);
    println!("  state root       : {}", report.state_root);
    println!("  converged        : {}", report.converged);

    if let Some(path) = &trace {
        obs::write_trace(path)?;
        println!("\ntrace written to {}", path.display());
    }

    if !report.fully_settled() {
        eprintln!("FAILED: survivors diverged or sessions did not settle");
        std::process::exit(1);
    }
    Ok(())
}
