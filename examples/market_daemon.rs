//! The persistent market engine as a daemon: N concurrent trading
//! sessions under an open-loop Poisson arrival process, block
//! production on a cadence, and (optionally) a seeded fault schedule —
//! dropped/duplicated/delayed/corrupted gossip plus kill-and-restart
//! of validators — all inside the deterministic simulation.
//!
//! Run with: `cargo run --release --example market_daemon`
//!
//! Flags:
//!   --seed N        engine seed (default 42); same seed, same run
//!   --sessions N    concurrent market sessions (default 3)
//!   --validators N  validator replicas (default 4)
//!   --faults        derive a fault schedule from the seed
//!   --fault-seed N  derive the fault schedule from a separate seed
//!   --trace PATH    write the observability stream (tradefl-trace/v1)
//!
//! Exits non-zero if the surviving validators do not converge to
//! bit-identical state or any session fails to settle.

use tradefl_engine::{Engine, EngineConfig, SessionSpec};
use tradefl_runtime::obs;
use tradefl_runtime::sim::faults::FaultConfig;

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    args.get(i + 1)?.parse().ok()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let trace = obs::trace_path_from_args();
    let seed = flag_value(&args, "--seed").unwrap_or(42);
    let sessions = flag_value(&args, "--sessions").unwrap_or(3) as usize;
    let validators = flag_value(&args, "--validators").unwrap_or(4) as usize;
    let horizon = 1u64 << 10;

    let fault_seed = flag_value(&args, "--fault-seed")
        .or_else(|| args.iter().any(|a| a == "--faults").then_some(seed));
    let faults = match fault_seed {
        Some(fs) => FaultConfig::from_seed(fs, validators, horizon),
        None => FaultConfig::none(),
    };

    let config = EngineConfig {
        validators,
        sessions: (0..sessions)
            .map(|s| SessionSpec {
                name: format!("market-{s}"),
                orgs: 3 + s % 3,
                seed: seed.wrapping_add(s as u64),
            })
            .collect(),
        batch_interval: 8,
        mean_arrival_gap: 3.0,
        admission_capacity: 32,
        horizon,
        faults,
        ..EngineConfig::default()
    };

    println!(
        "market daemon: {} sessions, {} validators, seed {}{}",
        sessions,
        validators,
        seed,
        match fault_seed {
            Some(fs) => format!(", fault schedule from seed {fs}"),
            None => ", fault-free".into(),
        }
    );

    let mut engine = Engine::new(config, seed)?;
    let report = engine.run()?;

    println!("\nafter {} simulated ticks:", report.ticks);
    println!("  chain height     : {}", report.final_height);
    println!("  blocks mined     : {} ({} batch ticks)", report.blocks, report.batches);
    println!("  backpressure     : {} deferred arrivals", report.backpressure);
    println!("  ledger heals     : {} (crash recovery + divergence repair)", report.heals);
    println!("  survivors        : {:?}", report.survivors);
    println!("  sessions settled : {}/{}", report.sessions_settled, report.sessions_total);
    println!("  state root       : {}", report.state_root);
    println!("  converged        : {}", report.converged);

    if let Some(path) = &trace {
        obs::write_trace(path)?;
        println!("\ntrace written to {}", path.display());
    }

    if !report.fully_settled() {
        eprintln!("FAILED: survivors diverged or sessions did not settle");
        std::process::exit(1);
    }
    Ok(())
}
