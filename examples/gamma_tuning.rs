//! Tuning the incentive intensity γ — the paper's headline operational
//! finding ("increasing the incentive intensity does not always improve
//! social welfare").
//!
//! A platform operator measures the data-accuracy curve empirically
//! (Fig. 2 pre-experiments, no assumed functional form), plugs the
//! fitted curve into the mechanism, sweeps γ, and picks the welfare
//! maximizing γ*.
//!
//! Run with: `cargo run --release --example gamma_tuning`

use tradefl::fl::fed::FedConfig;
use tradefl::fl::probe::{measure_accuracy_curve, SqrtFit};
use tradefl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pre-experiment: measure how accuracy grows with data on the
    //    workload the consortium actually trains (MobileNet-like model
    //    on an SVHN-like corpus), then fit c0 - c1/sqrt(x).
    let config = FedConfig { rounds: 8, local_epochs: 1, batch_size: 32, lr: 0.1, seed: 7 };
    let points = measure_accuracy_curve(
        ModelKind::MobilenetLike,
        DatasetKind::SvhnLike,
        &[1000, 2000, 4000, 8000, 16000],
        8,
        1200,
        &config,
        7,
    )?;
    let fit = SqrtFit::fit(&points);
    println!("measured data-accuracy curve (Fig. 2 style):");
    for p in &points {
        println!("  {:>6} samples -> accuracy {:.4}", p.samples, p.accuracy);
    }
    println!("fitted: acc(x) = {:.4} - {:.4}/sqrt(x)   (R^2 = {:.3})", fit.c0, fit.c1, fit.r_squared);

    // 2. Turn the fit into an AccuracyModel the mechanism can use
    //    directly: TradeFL never needs the functional form, only the
    //    monotone-concave curve.
    let market = MarketConfig::table_ii().build(7)?;
    let bits_per_sample = market.org(0).data_bits() / market.org(0).samples() as f64;
    let empirical = fit.to_empirical(100.0, 40_000.0, bits_per_sample, 24)?;
    // Scale gains into revenue-comparable units for this demo market.
    let game = CoopetitionGame::new(market, empirical);

    // 3. Sweep γ and watch welfare rise, peak, and fall.
    println!("\n       gamma    welfare   sum d_i");
    let mut best = (0.0f64, f64::NEG_INFINITY);
    for gamma in [0.0, 1e-9, 2e-9, 5.12e-9, 1e-8, 2e-8, 5e-8, 1e-7] {
        let tuned = game.with_params(game.market().params().with_gamma(gamma))?;
        let eq = DbrSolver::new().solve(&tuned)?;
        println!("  {gamma:>10.2e}  {:>9.1}  {:>7.3}", eq.welfare, eq.total_fraction);
        if eq.welfare > best.1 {
            best = (gamma, eq.welfare);
        }
    }
    println!(
        "\nrecommended incentive intensity: gamma = {:.2e} (welfare {:.1})",
        best.0, best.1
    );
    println!("(the paper reports the same phenomenon with gamma* = 5.12e-9)");
    Ok(())
}
