//! Dispute arbitration — the credibility half of TradeFL (§III-F: "In
//! the event of disputes between organizations, the recorded results
//! can serve as a basis for arbitration and can be retroactively
//! enforced").
//!
//! This example plays out a dispute end to end:
//! 1. a TEE-attested settlement runs on chain;
//! 2. one organization later *claims* it contributed more than
//!    recorded; the arbitrator refutes the claim from chain evidence
//!    alone — the recorded `contributionSubmit`, its Merkle inclusion
//!    proof against the block header, and the attestation check;
//! 3. an attempt to tamper with the recorded history is detected by
//!    chain verification.
//!
//! Run with: `cargo run --release --example arbitration`

use tradefl::ledger::attestation::{verify, Enclave};
use tradefl::ledger::settlement::SettlementSession;
use tradefl::ledger::tx::{TxPayload, Value};
use tradefl::ledger::types::{Address, Fixed};
use tradefl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let market = MarketConfig::table_ii().with_orgs(4).build(7)?;
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let eq = DbrSolver::new().solve(&game)?;

    // 1. Attested settlement.
    let enclave = Enclave::from_label("consortium-tee-vendor");
    let session = SettlementSession::deploy_attested(&game, enclave.clone())?;
    let report = session.settle(&game, &eq.profile)?;
    println!(
        "settled: {} orgs, {} blocks, max on/off-chain error {:.1e}",
        report.addresses.len(),
        report.chain_height,
        report.max_abs_error
    );

    // 2. The dispute: org-2 claims it contributed d = 0.95.
    let claimant = Address::from_name(game.market().org(2).name());
    let claimed_d = 0.95;
    println!("\ndispute: {claimant} claims it contributed d = {claimed_d}");

    // The arbitrator pulls the recorded contribution from chain events…
    let w3 = session.web3();
    let record = w3
        .logs_by_event("ContributionSubmitted")
        .into_iter()
        .find(|log| log.field("org").and_then(Value::as_addr) == Some(claimant))
        .expect("contribution recorded on-chain");
    let recorded_d = record.field("d").and_then(Value::as_fixed).unwrap();
    let recorded_f = record.field("f_ghz").and_then(Value::as_fixed).unwrap();
    println!("arbitrator: chain records d = {:.4}", recorded_d.to_f64());

    // …and anchors it: the recording transaction is provably included
    // in a block header (a light client needs only headers).
    let (height, tx_root, proof, tx_hash) = w3.with_node(|node| {
        // Find the transaction that carried this contribution.
        for block in node.chain().blocks() {
            for (idx, tx) in block.txs.iter().enumerate() {
                if tx.from == claimant {
                    if let TxPayload::Call { function, .. } = &tx.payload {
                        if function == "contributionSubmit" {
                            let proof = block.prove_tx(idx).expect("in range");
                            return (
                                block.header.number,
                                block.header.tx_root,
                                proof,
                                tx.hash(),
                            );
                        }
                    }
                }
            }
        }
        unreachable!("settlement recorded the contribution");
    });
    assert!(proof.verify(tx_hash, tx_root));
    println!(
        "arbitrator: inclusion proven in block {height} with a {}-step Merkle path",
        proof.path.len()
    );

    // The TEE attestation binds the *observed* training run to the
    // recorded numbers; the claimed d = 0.95 cannot produce a valid MAC.
    let honest = verify(
        &enclave.verification_key(),
        claimant,
        recorded_d,
        recorded_f,
        &enclave.attest(claimant, recorded_d, recorded_f),
    );
    let claimed = verify(
        &enclave.verification_key(),
        claimant,
        Fixed::from_f64(claimed_d),
        recorded_f,
        &enclave.attest(claimant, recorded_d, recorded_f),
    );
    assert!(honest && !claimed);
    println!("arbitrator: recorded value attests, claimed value does not — claim REJECTED");

    // 3. Retroactive tampering fails: a forged export either refuses to
    //    decode (push-validation inside the codec) or decodes to a chain
    //    that provably differs from the committed history.
    let detected = w3.with_node(|node| {
        let chain = node.chain().clone();
        let bytes = tradefl::ledger::codec::encode_chain(&chain);
        let mut all_caught = true;
        for pos in [bytes.len() / 3, bytes.len() / 2, 2 * bytes.len() / 3] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xff;
            let caught = match tradefl::ledger::codec::decode_chain(&corrupted) {
                Err(_) => true,
                Ok(decoded) => decoded != chain || decoded.verify().is_err(),
            };
            all_caught &= caught;
        }
        all_caught && chain.verify().is_ok()
    });
    assert!(detected);
    println!("tamper check: corrupted exports rejected; intact chain verifies");
    println!("\narbitration complete — the paper's credibility guarantees hold.");
    Ok(())
}
