//! The full TradeFL pipeline in one run: market → equilibrium →
//! credible on-chain settlement → federated training at the agreed
//! contributions — and a comparison against training without the
//! mechanism.
//!
//! Run with: `cargo run --release --example end_to_end`
//!
//! Pass `--trace out.jsonl` to record the run's observability stream
//! (solver iterations, FL rounds, mined blocks, pool/ledger counters)
//! as `tradefl-trace/v1` JSON Lines.

use tradefl::pipeline::{Pipeline, PipelineConfig};
use tradefl::prelude::*;
use tradefl_runtime::obs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let trace = obs::trace_path_from_args();
    let config = PipelineConfig::paper();
    let report = Pipeline::new(config).run(42)?;

    println!("equilibrium (DBR, Algorithm 2):");
    println!("  rounds to converge : {}", report.equilibrium.iterations);
    println!("  social welfare     : {:.1}", report.equilibrium.welfare);
    println!("  total data (sum d) : {:.2}", report.equilibrium.total_fraction);

    println!("\non-chain settlement (Fig. 3):");
    println!("  chain height       : {}", report.settlement.chain_height);
    println!("  total gas          : {}", report.settlement.total_gas);
    println!("  on/off-chain error : {:.2e}", report.settlement.max_abs_error);
    assert!(report.settlement.consistent(1e-3));

    println!("\nfederated training at the agreed contributions:");
    let first = report.training.history.first().unwrap();
    let last = report.training.history.last().unwrap();
    println!("  round 0 : loss {:.3}, accuracy {:.3}", first.loss, first.accuracy);
    println!("  round {:>2}: loss {:.3}, accuracy {:.3}", last.round, last.loss, last.accuracy);

    // Counterfactual: same market without payoff redistribution (WPR).
    let market = MarketConfig::table_ii().build(42)?;
    let game = CoopetitionGame::new(market, SqrtAccuracy::paper_default());
    let wpr = tradefl::solver::DbrSolver::with_options(tradefl::solver::DbrOptions {
        objective: tradefl::solver::Objective::WithoutRedistribution,
        ..Default::default()
    })
    .solve(&game)?;
    println!(
        "\nwithout TradeFL, organizations would contribute only {:.2} (vs {:.2}) units of data",
        wpr.total_fraction, report.equilibrium.total_fraction
    );
    assert!(report.equilibrium.total_fraction > wpr.total_fraction);

    if let Some(path) = &trace {
        obs::write_trace(path)?;
        println!("\ntrace written to {}", path.display());
    }
    Ok(())
}
